//! Shared scenario construction — one code path for every front end.
//!
//! The `experiments` CLI and the `hbm-serve` daemon both turn a small
//! declarative description (attacker policy, horizon, seed, optional
//! tenant-mix and defense overrides) into a configured [`Simulation`] and
//! run it. This module is that single code path, so served results can
//! never drift from CLI results: both build policies with
//! [`build_policy`]/[`default_policies`], run them with [`run_policy`],
//! derive the cache/manifest key with [`Scenario::config_canonical`], and
//! serialize the outcome with [`metrics_json`].

use std::sync::{Arc, OnceLock, RwLock};

use hbm_surrogate::{ThermalTier, TieredExtractor};
use hbm_telemetry::fnv1a64;
use hbm_telemetry::json::{parse_flat_object, JsonObject, JsonValue};
use hbm_thermal::HeatMatrixModel;
use hbm_units::{Energy, Power, Temperature};

use crate::{
    AttackPolicy, ColoConfig, ForesightedPolicy, Metrics, MyopicPolicy, RandomPolicy, SimReport,
    Simulation,
};

/// The attack-policy names [`build_policy`] accepts, in canonical order.
pub const POLICY_NAMES: &[&str] = &["random", "myopic", "foresighted"];

/// Canonical one-line description of a run configuration. This exact
/// string is hashed into `manifest.json`'s `config_hash` by both front
/// ends and keys the `hbm-serve` scenario cache.
pub fn config_canonical_base(ids: &str, days: u64, warmup_days: u64, seed: u64) -> String {
    format!("ids={ids};days={days};warmup_days={warmup_days};seed={seed}")
}

/// Builds one attack policy by name at its paper-default settings,
/// returning the policy and whether it needs a learning warm-up.
///
/// # Errors
///
/// Returns a message naming the unknown policy and listing
/// [`POLICY_NAMES`].
#[allow(clippy::type_complexity)]
pub fn build_policy(
    name: &str,
    config: &ColoConfig,
    seed: u64,
) -> Result<(Box<dyn AttackPolicy>, bool), String> {
    match name {
        "random" => Ok((
            Box::new(RandomPolicy::new(
                0.08,
                config.attack_load,
                config.slot,
                seed,
            )),
            false,
        )),
        "myopic" => Ok((
            Box::new(MyopicPolicy::new(Power::from_kilowatts(7.4))),
            false,
        )),
        "foresighted" => Ok((Box::new(ForesightedPolicy::paper_default(14.0, seed)), true)),
        other => Err(format!(
            "unknown policy {other:?} (expected one of {})",
            POLICY_NAMES.join(", ")
        )),
    }
}

/// The canonical trio of repeated-attack policies at their default
/// settings, as `(name, policy, needs_warmup)` rows.
#[allow(clippy::type_complexity)]
pub fn default_policies(
    config: &ColoConfig,
    seed: u64,
) -> Vec<(String, Box<dyn AttackPolicy>, bool)> {
    POLICY_NAMES
        .iter()
        .map(|name| {
            let (policy, warmup) =
                build_policy(name, config, seed).expect("POLICY_NAMES entries always build");
            (name.to_string(), policy, warmup)
        })
        .collect()
}

/// Builds and runs a simulation, warming up learning policies first.
pub fn run_policy(
    config: &ColoConfig,
    policy: Box<dyn AttackPolicy>,
    seed: u64,
    warmup_slots: u64,
    slots: u64,
    needs_warmup: bool,
) -> SimReport {
    let mut sim = Simulation::new(config.clone(), policy, seed);
    if needs_warmup {
        sim.warmup(warmup_slots);
    }
    sim.run(slots)
}

/// Process-wide optional surrogate tier consulted by
/// [`Scenario::thermal_model`]. `None` — the default — means no front end
/// behaves any differently than before the tier existed.
static THERMAL_TIER: OnceLock<RwLock<Option<Arc<TieredExtractor>>>> = OnceLock::new();

fn thermal_tier_slot() -> &'static RwLock<Option<Arc<TieredExtractor>>> {
    THERMAL_TIER.get_or_init(|| RwLock::new(None))
}

/// Installs (or, with `None`, clears) the process-wide surrogate tier.
/// Front ends that opted in (e.g. `hbm-serve --surrogate`) call this once
/// at startup; everything else never notices it.
pub fn install_thermal_tier(tier: Option<Arc<TieredExtractor>>) {
    *thermal_tier_slot().write().unwrap() = tier;
}

/// The currently installed surrogate tier, if any — front ends read this
/// to report tier statistics (`/v1/metrics`) and per-response tier labels.
pub fn installed_thermal_tier() -> Option<Arc<TieredExtractor>> {
    thermal_tier_slot().read().unwrap().clone()
}

/// A declarative simulation request: the fields a front end (CLI flags or
/// an `hbm-serve` request body) may set, everything else at paper
/// defaults.
///
/// The optional overrides cover the knobs the paper sweeps: tenant mix
/// (mean utilization of the colocation), attack intensity (battery-fed
/// load and battery capacity), and the operator's defense configuration
/// (emergency threshold and per-server cap).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Attack policy name (one of [`POLICY_NAMES`]).
    pub policy: String,
    /// Measured horizon, days.
    pub days: u64,
    /// Learning warm-up horizon, days (used by policies that learn).
    pub warmup_days: u64,
    /// Base seed.
    pub seed: u64,
    /// Mean utilization of the colocation capacity in `[0, 1]`
    /// (tenant mix; `None` keeps the paper-default trace).
    pub utilization: Option<f64>,
    /// Battery-fed attack load, kW.
    pub attack_load_kw: Option<f64>,
    /// Attacker battery capacity, kWh.
    pub battery_kwh: Option<f64>,
    /// Defense: emergency-declaration inlet threshold, °C.
    pub threshold_c: Option<f64>,
    /// Defense: per-server emergency power cap, W.
    pub cap_w: Option<f64>,
}

impl Scenario {
    /// A scenario for `policy` at the CLI's default horizon
    /// (365 measured days, 180 warm-up days, seed 1).
    pub fn new(policy: impl Into<String>) -> Self {
        Scenario {
            policy: policy.into(),
            days: 365,
            warmup_days: 180,
            seed: 1,
            utilization: None,
            attack_load_kw: None,
            battery_kwh: None,
            threshold_c: None,
            cap_w: None,
        }
    }

    /// Measured slots.
    pub fn slots(&self) -> u64 {
        self.days * 24 * 60
    }

    /// Warm-up slots.
    pub fn warmup_slots(&self) -> u64 {
        self.warmup_days * 24 * 60
    }

    /// The scenario for site `i` of a batch: identical overrides and
    /// horizon, seed staggered by `i` — so site `i` of a batch request is
    /// *the same scenario* as a single request at `seed + i`, and the two
    /// share cache entries and manifests.
    pub fn site(&self, i: u64) -> Scenario {
        Scenario {
            seed: self.seed.wrapping_add(i),
            ..self.clone()
        }
    }

    /// The canonical one-line configuration string: the CLI's base form,
    /// with one `;key=value` suffix per override actually set (in the
    /// fixed order `util`, `attack_load_kw`, `battery_kwh`, `threshold_c`,
    /// `cap_w`). A scenario without overrides is byte-identical to the
    /// CLI's canonical string for the same policy id and horizon.
    pub fn config_canonical(&self) -> String {
        let mut s = config_canonical_base(&self.policy, self.days, self.warmup_days, self.seed);
        for (key, value) in [
            ("util", self.utilization),
            ("attack_load_kw", self.attack_load_kw),
            ("battery_kwh", self.battery_kwh),
            ("threshold_c", self.threshold_c),
            ("cap_w", self.cap_w),
        ] {
            if let Some(v) = value {
                s.push_str(&format!(";{key}={v}"));
            }
        }
        s
    }

    /// The FNV-1a hash of [`Scenario::config_canonical`], hex — the same
    /// value `manifest.json` records as `config_hash`.
    pub fn config_hash(&self) -> String {
        format!("{:016x}", fnv1a64(self.config_canonical().as_bytes()))
    }

    /// Builds the colocation configuration with all overrides applied.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first invalid field.
    pub fn build_config(&self) -> Result<ColoConfig, String> {
        if self.days == 0 {
            return Err("days must be at least 1".into());
        }
        let mut config = ColoConfig::paper_default();
        if let Some(u) = self.utilization {
            if !(0.0..=1.0).contains(&u) {
                return Err(format!("utilization must be in [0, 1], got {u}"));
            }
            config = config.with_mean_utilization(u);
        }
        if let Some(kw) = self.attack_load_kw {
            if kw.is_nan() || kw <= 0.0 {
                return Err(format!("attack_load_kw must be positive, got {kw}"));
            }
            config = config.with_attack_load(Power::from_kilowatts(kw));
        }
        if let Some(kwh) = self.battery_kwh {
            if kwh.is_nan() || kwh <= 0.0 {
                return Err(format!("battery_kwh must be positive, got {kwh}"));
            }
            config = config.with_battery_capacity(Energy::from_kilowatt_hours(kwh));
        }
        if let Some(c) = self.threshold_c {
            if !c.is_finite() {
                return Err(format!("threshold_c must be finite, got {c}"));
            }
            config.protocol.threshold = Temperature::from_celsius(c);
        }
        if let Some(w) = self.cap_w {
            if w.is_nan() || w <= 0.0 {
                return Err(format!("cap_w must be positive, got {w}"));
            }
            config.protocol.cap_per_server = Power::from_watts(w);
        }
        config.validate()?;
        Ok(config)
    }

    /// Answers this scenario's heat-matrix model from the installed
    /// surrogate tier, if one is installed (`Ok(None)` otherwise).
    ///
    /// The scenario's thermal operating point is its mean per-server power
    /// — benign trace mean plus attacker standby, spread over the
    /// container — at the tier's own supply/leakage settings. Of the
    /// scenario overrides only `utilization` moves that point, so a
    /// trained trust region covering the swept utilization range answers
    /// every sweep point from the surrogate; anything outside falls back
    /// to full extraction byte-identically (and is counted).
    ///
    /// # Errors
    ///
    /// Returns a message for an invalid scenario configuration or a query
    /// the fallback path cannot extract.
    pub fn thermal_model(&self) -> Result<Option<(HeatMatrixModel, ThermalTier)>, String> {
        let Some(tier) = installed_thermal_tier() else {
            return Ok(None);
        };
        let config = self.build_config()?;
        let per_server_w =
            (config.trace.mean + config.standby_power).as_watts() / config.server_count() as f64;
        let query = tier.query_for_baseline(per_server_w);
        tier.model_for(&query).map(Some)
    }

    /// Builds a fresh simulation for this scenario *without* running
    /// warm-up, returning it with the `needs_warmup` flag from
    /// [`build_policy`]. This is the construction path the experiment
    /// platform uses: create runs warm-up once, and checkpoint restore
    /// rebuilds through here before overwriting the dynamic state
    /// ([`crate::Simulation::restore_from_json`]).
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown policy or invalid configuration.
    pub fn build_sim(&self) -> Result<(Simulation, bool), String> {
        let config = self.build_config()?;
        let (policy, needs_warmup) = build_policy(&self.policy, &config, self.seed)?;
        Ok((Simulation::new(config, policy, self.seed), needs_warmup))
    }

    /// Like [`Scenario::build_sim`], but reuses `donor`'s benign workload
    /// trace when this scenario would generate the identical one — same
    /// trace configuration and same seed as `donor_seed` (the seed `donor`
    /// was built with). Trace synthesis dominates simulator construction,
    /// so this turns a fork-and-perturb rebuild into a cheap state copy;
    /// scenarios that *do* change the workload (a `utilization` override,
    /// a different seed) fall back to generating, so the result is always
    /// bit-identical to [`Scenario::build_sim`].
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown policy or invalid configuration.
    pub fn build_sim_sharing_trace(
        &self,
        donor: &Simulation,
        donor_seed: u64,
    ) -> Result<(Simulation, bool), String> {
        let config = self.build_config()?;
        let (policy, needs_warmup) = build_policy(&self.policy, &config, self.seed)?;
        let sim = if self.seed == donor_seed && config.trace == donor.config().trace {
            Simulation::with_trace(config, policy, self.seed, donor.trace_arc())
        } else {
            Simulation::new(config, policy, self.seed)
        };
        Ok((sim, needs_warmup))
    }

    /// Builds the configuration and policy, runs the simulation (warming
    /// up learning policies), and returns the report.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown policy or invalid configuration;
    /// never panics on bad input.
    pub fn run(&self) -> Result<SimReport, String> {
        let config = self.build_config()?;
        let (policy, needs_warmup) = build_policy(&self.policy, &config, self.seed)?;
        Ok(run_policy(
            &config,
            policy,
            self.seed,
            self.warmup_slots(),
            self.slots(),
            needs_warmup,
        ))
    }

    /// Serializes the scenario as one flat JSON object — the inverse of
    /// [`Scenario::from_flat_json`] (field for field, overrides included
    /// only when set). The experiment store persists this in manifests so
    /// a restarted daemon can rebuild the exact scenario.
    pub fn to_flat_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("policy", &self.policy)
            .u64("days", self.days)
            .u64("warmup_days", self.warmup_days)
            .u64("seed", self.seed);
        for (key, value) in [
            ("utilization", self.utilization),
            ("attack_load_kw", self.attack_load_kw),
            ("battery_kwh", self.battery_kwh),
            ("threshold_c", self.threshold_c),
            ("cap_w", self.cap_w),
        ] {
            if let Some(v) = value {
                o.f64(key, v);
            }
        }
        o.finish()
    }

    /// Parses a scenario from one flat JSON object (an `hbm-serve`
    /// request body). `policy` is required; every other field defaults as
    /// in [`Scenario::new`]. Unknown keys are rejected so typos fail
    /// loudly instead of silently running the wrong scenario.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed field.
    pub fn from_flat_json(body: &str) -> Result<Scenario, String> {
        Scenario::from_fields(parse_flat_object(body)?)
    }

    /// Builds a scenario from already-parsed flat-JSON fields (shared with
    /// [`BatchScenario::from_flat_json`], which strips its own keys first).
    fn from_fields(fields: Vec<(String, JsonValue)>) -> Result<Scenario, String> {
        let mut scenario = Scenario::new("");
        for (key, value) in fields {
            match key.as_str() {
                "policy" => {
                    scenario.policy = value.as_str().ok_or("policy must be a string")?.to_string();
                }
                "days" => scenario.days = json_u64(&key, &value)?,
                "warmup_days" => scenario.warmup_days = json_u64(&key, &value)?,
                "seed" => scenario.seed = json_u64(&key, &value)?,
                "utilization" => scenario.utilization = Some(json_f64(&key, &value)?),
                "attack_load_kw" => scenario.attack_load_kw = Some(json_f64(&key, &value)?),
                "battery_kwh" => scenario.battery_kwh = Some(json_f64(&key, &value)?),
                "threshold_c" => scenario.threshold_c = Some(json_f64(&key, &value)?),
                "cap_w" => scenario.cap_w = Some(json_f64(&key, &value)?),
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        if scenario.policy.is_empty() {
            return Err("missing required field \"policy\"".into());
        }
        Ok(scenario)
    }
}

/// Mid-run overrides a perturb request may apply to a live experiment:
/// the workload mix, the attack intensity, and the operator's defense
/// knobs — the same five fields [`Scenario`] accepts as overrides, so a
/// perturbed experiment is always equivalent to *some* scenario.
///
/// Applying a perturbation rebuilds the simulation from the perturbed
/// scenario and transplants the dynamic state
/// ([`crate::Simulation::restore_from_json`]); a utilization change
/// therefore regenerates the benign trace deterministically from the
/// scenario seed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Perturbation {
    /// New mean utilization of the colocation capacity in `[0, 1]`.
    pub utilization: Option<f64>,
    /// New battery-fed attack load, kW.
    pub attack_load_kw: Option<f64>,
    /// New attacker battery capacity, kWh.
    pub battery_kwh: Option<f64>,
    /// New emergency-declaration inlet threshold, °C.
    pub threshold_c: Option<f64>,
    /// New per-server emergency power cap, W.
    pub cap_w: Option<f64>,
}

impl Perturbation {
    /// Parses a perturbation from one flat JSON object (an `hbm-serve`
    /// perturb request body). All fields optional; unknown keys rejected.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed field.
    pub fn from_flat_json(body: &str) -> Result<Perturbation, String> {
        let mut p = Perturbation::default();
        for (key, value) in parse_flat_object(body)? {
            match key.as_str() {
                "utilization" => p.utilization = Some(json_f64(&key, &value)?),
                "attack_load_kw" => p.attack_load_kw = Some(json_f64(&key, &value)?),
                "battery_kwh" => p.battery_kwh = Some(json_f64(&key, &value)?),
                "threshold_c" => p.threshold_c = Some(json_f64(&key, &value)?),
                "cap_w" => p.cap_w = Some(json_f64(&key, &value)?),
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        Ok(p)
    }

    /// Serializes the perturbation as one flat JSON object — the inverse
    /// of [`Perturbation::from_flat_json`], with only the set fields
    /// emitted. This is the body an `hbm-serve` perturb request sends.
    pub fn to_flat_json(&self) -> String {
        let mut o = JsonObject::new();
        for (key, value) in [
            ("utilization", self.utilization),
            ("attack_load_kw", self.attack_load_kw),
            ("battery_kwh", self.battery_kwh),
            ("threshold_c", self.threshold_c),
            ("cap_w", self.cap_w),
        ] {
            if let Some(v) = value {
                o.f64(key, v);
            }
        }
        o.finish()
    }

    /// Whether no field is set.
    pub fn is_empty(&self) -> bool {
        *self == Perturbation::default()
    }

    /// The scenario with this perturbation's overrides applied; unset
    /// fields keep the base value. The result's canonical string is the
    /// effective configuration the experiment runs from here on.
    pub fn apply(&self, base: &Scenario) -> Scenario {
        let mut s = base.clone();
        if self.utilization.is_some() {
            s.utilization = self.utilization;
        }
        if self.attack_load_kw.is_some() {
            s.attack_load_kw = self.attack_load_kw;
        }
        if self.battery_kwh.is_some() {
            s.battery_kwh = self.battery_kwh;
        }
        if self.threshold_c.is_some() {
            s.threshold_c = self.threshold_c;
        }
        if self.cap_w.is_some() {
            s.cap_w = self.cap_w;
        }
        s
    }
}

/// A batched simulation request: `count` seed-staggered replicas of one
/// [`Scenario`] template, advanced in lockstep by the batch engine
/// ([`crate::BatchSim`]) and sharded across the `hbm_par` thread budget.
///
/// Site `i` is exactly [`Scenario::site`]`(i)` — the same scenario a single
/// request at `seed + i` would run — and by the batch engine's determinism
/// contract its report is byte-identical to running that scenario alone.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchScenario {
    /// The per-site scenario template (its `seed` is the base seed).
    pub scenario: Scenario,
    /// Number of sites (≥ 1).
    pub count: u64,
}

impl BatchScenario {
    /// Parses a batch request from one flat JSON object: the [`Scenario`]
    /// fields plus `count`. `count` defaults to 1.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed field.
    pub fn from_flat_json(body: &str) -> Result<BatchScenario, String> {
        let mut fields = parse_flat_object(body)?;
        let mut count = 1u64;
        if let Some(pos) = fields.iter().position(|(key, _)| key == "count") {
            let (key, value) = fields.remove(pos);
            count = json_u64(&key, &value)?;
        }
        if count == 0 {
            return Err("count must be at least 1".into());
        }
        Ok(BatchScenario {
            scenario: Scenario::from_fields(fields)?,
            count,
        })
    }

    /// The per-site scenarios, in site order.
    pub fn sites(&self) -> Vec<Scenario> {
        (0..self.count).map(|i| self.scenario.site(i)).collect()
    }

    /// Runs the whole batch and returns per-site reports in site order.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown policy or invalid configuration.
    pub fn run(&self) -> Result<Vec<crate::SimReport>, String> {
        run_scenarios_batch(&self.sites())
    }
}

/// Runs a set of scenarios through the batch engine and returns their
/// reports in input order, byte-identical to [`Scenario::run`] on each.
///
/// The scenarios may differ in seed and overrides but must agree on the
/// horizon and on whether their policy learns, because the batch advances
/// all lanes in lockstep (warm-up included).
///
/// # Errors
///
/// Returns a message for an empty batch, mismatched horizons, an unknown
/// policy, or an invalid configuration.
pub fn run_scenarios_batch(sites: &[Scenario]) -> Result<Vec<crate::SimReport>, String> {
    let first = sites.first().ok_or("batch needs at least one scenario")?;
    let mut sims = Vec::with_capacity(sites.len());
    let mut needs_warmup = false;
    for (i, site) in sites.iter().enumerate() {
        if (site.days, site.warmup_days) != (first.days, first.warmup_days) {
            return Err(format!(
                "batch scenarios must share the horizon: site {i} has days={}/warmup_days={}, site 0 has days={}/warmup_days={}",
                site.days, site.warmup_days, first.days, first.warmup_days
            ));
        }
        let config = site.build_config()?;
        let (policy, warmup) = build_policy(&site.policy, &config, site.seed)?;
        if i == 0 {
            needs_warmup = warmup;
        } else if warmup != needs_warmup {
            return Err(format!(
                "batch scenarios must agree on learning warm-up: site {i} ({}) differs from site 0 ({})",
                site.policy, first.policy
            ));
        }
        sims.push(Simulation::new(config, policy, site.seed));
    }
    let sims = if needs_warmup && first.warmup_slots() > 0 {
        // run_sharded moves the warm-up metrics out with its reports, so
        // dropping them leaves each lane freshly metered — exactly
        // `Simulation::warmup` semantics.
        crate::run_sharded(sims, first.warmup_slots()).sims
    } else {
        sims
    };
    Ok(crate::run_sharded(sims, first.slots()).reports)
}

fn json_f64(key: &str, value: &JsonValue) -> Result<f64, String> {
    value
        .as_f64()
        .ok_or_else(|| format!("{key} must be a number"))
}

fn json_u64(key: &str, value: &JsonValue) -> Result<u64, String> {
    let v = json_f64(key, value)?;
    if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
        return Err(format!("{key} must be a non-negative integer, got {v}"));
    }
    Ok(v as u64)
}

/// Serializes a run's aggregate metrics as one flat JSON line — the
/// `hbm-serve` response body and the CLI `simulate` output, byte-identical
/// between the two for the same canonical configuration.
pub fn metrics_json(canonical: &str, m: &Metrics) -> String {
    let mut o = JsonObject::new();
    o.str(
        "config_hash",
        &format!("{:016x}", fnv1a64(canonical.as_bytes())),
    )
    .u64("slots", m.slots)
    .u64("emergency_slots", m.emergency_slots)
    .u64("emergency_events", m.emergency_events)
    .u64("outage_events", m.outage_events)
    .u64("outage_slots", m.outage_slots)
    .u64("attack_slots", m.attack_slots)
    .f64("attack_kwh", m.attack_energy.as_kilowatt_hours())
    .f64("attack_hours_per_day", m.attack_hours_per_day())
    .f64("emergency_fraction", m.emergency_fraction())
    .f64("avg_delta_t_c", m.avg_delta_t().as_celsius())
    .f64("mean_emergency_degradation", m.mean_emergency_degradation())
    .f64(
        "attacker_metered_kwh",
        m.attacker_metered_energy.as_kilowatt_hours(),
    )
    .f64(
        "attacker_actual_kwh",
        m.attacker_actual_energy.as_kilowatt_hours(),
    );
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden() -> Scenario {
        let mut s = Scenario::new("myopic");
        s.days = 1;
        s.warmup_days = 0;
        s.seed = 7;
        s
    }

    #[test]
    fn canonical_matches_cli_base_form_without_overrides() {
        let s = golden();
        assert_eq!(
            s.config_canonical(),
            config_canonical_base("myopic", 1, 0, 7)
        );
        assert_eq!(
            s.config_canonical(),
            "ids=myopic;days=1;warmup_days=0;seed=7"
        );
    }

    #[test]
    fn canonical_appends_overrides_in_fixed_order() {
        let mut s = golden();
        s.cap_w = Some(100.0);
        s.utilization = Some(0.5);
        assert_eq!(
            s.config_canonical(),
            "ids=myopic;days=1;warmup_days=0;seed=7;util=0.5;cap_w=100"
        );
    }

    #[test]
    fn scenario_run_matches_default_policies_path() {
        // The CLI builds its trio through default_policies + run_policy;
        // the server builds one policy through Scenario::run. Same
        // canonical config must mean identical Metrics.
        let s = golden();
        let config = ColoConfig::paper_default();
        let (name, policy, warmup) = default_policies(&config, s.seed)
            .into_iter()
            .find(|(name, _, _)| name == "myopic")
            .unwrap();
        let cli = run_policy(&config, policy, s.seed, s.warmup_slots(), s.slots(), warmup);
        let served = s.run().unwrap();
        assert_eq!(name, s.policy);
        assert_eq!(cli.metrics, served.metrics);
        assert_eq!(
            metrics_json(&s.config_canonical(), &cli.metrics),
            metrics_json(&s.config_canonical(), &served.metrics)
        );
    }

    #[test]
    fn from_flat_json_parses_and_defaults() {
        let s = Scenario::from_flat_json(
            "{\"policy\":\"random\",\"days\":2,\"warmup_days\":0,\"seed\":9,\"utilization\":0.5}",
        )
        .unwrap();
        assert_eq!(s.policy, "random");
        assert_eq!(s.days, 2);
        assert_eq!(s.seed, 9);
        assert_eq!(s.utilization, Some(0.5));
        assert_eq!(s.attack_load_kw, None);

        let d = Scenario::from_flat_json("{\"policy\":\"myopic\"}").unwrap();
        assert_eq!(d.days, 365);
        assert_eq!(d.warmup_days, 180);
        assert_eq!(d.seed, 1);
    }

    #[test]
    fn from_flat_json_rejects_bad_input() {
        assert!(Scenario::from_flat_json("{}").is_err());
        assert!(Scenario::from_flat_json("{\"policy\":\"myopic\",\"dyas\":1}").is_err());
        assert!(Scenario::from_flat_json("{\"policy\":\"myopic\",\"days\":-1}").is_err());
        assert!(Scenario::from_flat_json("{\"policy\":\"myopic\",\"days\":1.5}").is_err());
        assert!(Scenario::from_flat_json("{\"policy\":3}").is_err());
        assert!(Scenario::from_flat_json("not json").is_err());
    }

    #[test]
    fn build_config_applies_and_validates_overrides() {
        let mut s = golden();
        s.attack_load_kw = Some(2.0);
        s.battery_kwh = Some(0.4);
        s.threshold_c = Some(33.0);
        s.cap_w = Some(100.0);
        let config = s.build_config().unwrap();
        assert_eq!(config.attack_load, Power::from_kilowatts(2.0));
        assert_eq!(config.battery.capacity, Energy::from_kilowatt_hours(0.4));
        assert_eq!(config.protocol.threshold, Temperature::from_celsius(33.0));
        assert_eq!(config.protocol.cap_per_server, Power::from_watts(100.0));

        let mut bad = golden();
        bad.utilization = Some(1.5);
        assert!(bad.build_config().is_err());
        let mut bad = golden();
        bad.attack_load_kw = Some(-1.0);
        assert!(bad.build_config().is_err());
        let mut bad = golden();
        bad.days = 0;
        assert!(bad.build_config().is_err());
    }

    #[test]
    fn unknown_policy_is_an_error_not_a_panic() {
        let mut s = golden();
        s.policy = "zergling".into();
        let err = s.run().unwrap_err();
        assert!(err.contains("zergling"));
    }

    #[test]
    fn metrics_json_is_deterministic_and_flat() {
        let s = golden();
        let report = s.run().unwrap();
        let a = metrics_json(&s.config_canonical(), &report.metrics);
        let b = metrics_json(&s.config_canonical(), &report.metrics);
        assert_eq!(a, b);
        let fields = parse_flat_object(&a).unwrap();
        assert_eq!(fields[0].0, "config_hash");
        assert!(fields.iter().any(|(k, _)| k == "attack_slots"));
    }
}
