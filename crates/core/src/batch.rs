//! Batched fleet-scale simulation engine.
//!
//! [`BatchSim`] advances a whole batch of scenarios in lockstep: per-slot
//! state lives in structure-of-arrays form so the hot kernels — the zone
//! thermal sub-steps ([`ZoneLanes`]), the side channel's Box–Muller noise
//! pass ([`box_muller_slice`]), and an all-foresighted fleet's Q-learning
//! (packed `[lane × state × action]` tables plus schedule column sweeps,
//! see [`ForesightedLanes`]) — run as tight, SIMD-friendly inner loops over
//! the batch dimension instead of re-entering one `Simulation` at a time.
//!
//! # Determinism contract
//!
//! Lane `i` of a batch produces **bit-identical** trajectories, records, and
//! metrics to running the same [`Simulation`] alone:
//!
//! * every lane applies exactly the op-for-op IEEE-754 sequence of
//!   [`Simulation::step`] (the shared kernels are the single source of truth
//!   for the math);
//! * lanes never interact — each carries its own trace, side-channel RNG,
//!   battery, protocol, and policy;
//! * sharding ([`run_sharded`]) partitions lanes contiguously and merges
//!   order-independent per-slot down counts, so results are byte-identical
//!   at any thread count, including fully sequential.
//!
//! Telemetry: each batch slot emits one `batch.step` span (one unit per
//! lane), with the zone pass nested under `batch.zone`.

use std::sync::Arc;

use hbm_battery::Battery;
use hbm_power::EmergencyProtocol;
use hbm_rl::{epsilon_sweep, learning_rate_sweep, EpsilonSchedule, LearningRate};
use hbm_sidechannel::math::box_muller_slice;
use hbm_sidechannel::{ChannelLanes, VoltageSideChannel, NORMALS_PER_ESTIMATE};
use hbm_telemetry::Recorder;
use hbm_thermal::{ZoneLanes, ZoneModel};
use hbm_units::{Duration, Energy, Power, Temperature};
use hbm_workload::PowerTrace;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::attacker::{can_attack, Campaign, ForesightedLaneParams};
use crate::sim::{emit_sample, slots_per_day_at, PendingTransition, SimParts};
use crate::{
    AttackAction, AttackPolicy, ColoConfig, ForesightedPolicy, Learner, Metrics, MyopicPolicy,
    Observation, SimReport, Simulation, SlotRecord, Transition,
};

/// Lane-major histogram counts for a batch whose lanes all share one
/// histogram shape (`lanes × bins` in one allocation, plus under/overflow
/// columns). The binning arithmetic replicates [`Histogram::add`] op for op
/// (`width` holds the value `Histogram::width` recomputes on every call).
struct PackedHistograms {
    lo: f64,
    hi: f64,
    width: f64,
    bins: usize,
    counts: Vec<u64>,
    underflow: Vec<u64>,
    overflow: Vec<u64>,
}

impl PackedHistograms {
    #[inline]
    fn add(&mut self, lane: usize, x: f64) {
        if x < self.lo {
            self.underflow[lane] += 1;
        } else if x >= self.hi {
            self.overflow[lane] += 1;
        } else {
            let idx = ((x - self.lo) / self.width) as usize;
            let idx = idx.min(self.bins - 1);
            self.counts[lane * self.bins + idx] += 1;
        }
    }
}

/// Per-slot metric accumulators as SoA columns, one entry per lane.
///
/// [`Metrics`] is the user-facing result type, but updating it in place
/// keeps phase 6 bouncing between each lane's multi-cache-line struct and
/// its separately allocated histogram bins. The batch instead accumulates
/// into dense columns — seeded from each lane's starting `Metrics`, so every
/// addition happens in the scalar path's exact order and the running sums
/// stay bit-identical — and flows them back with
/// [`fold_into`](MetricLanes::fold_into) when reports or scenarios leave the
/// batch. Columns with unit-typed counterparts store the raw repr
/// (kilowatt-hours for [`Energy`], Celsius degrees for
/// [`hbm_units::TemperatureDelta`]); the unit wrappers are plain `f64`
/// newtypes, so arithmetic on the raw values is the same IEEE-754 sequence.
struct MetricLanes {
    slots: Vec<u64>,
    emergency_slots: Vec<u64>,
    emergency_events: Vec<u64>,
    outage_events: Vec<u64>,
    outage_slots: Vec<u64>,
    attack_slots: Vec<u64>,
    attack_energy_kwh: Vec<f64>,
    delta_t_sum_c: Vec<f64>,
    degradation_sum: Vec<f64>,
    degradation_slots: Vec<u64>,
    attacker_metered_kwh: Vec<f64>,
    attacker_actual_kwh: Vec<f64>,
    /// Packed inlet histograms when every lane shares one shape; `None`
    /// falls back to adding into each lane's `Metrics` directly.
    hist: Option<PackedHistograms>,
}

impl MetricLanes {
    fn from_metrics(metrics: &[Metrics]) -> MetricLanes {
        let h0 = &metrics[0].inlet_histogram;
        let uniform = metrics.iter().all(|m| {
            let h = &m.inlet_histogram;
            h.lo() == h0.lo() && h.hi() == h0.hi() && h.counts().len() == h0.counts().len()
        });
        let hist = uniform.then(|| {
            let bins = h0.counts().len();
            let mut counts = Vec::with_capacity(bins * metrics.len());
            for m in metrics {
                counts.extend_from_slice(m.inlet_histogram.counts());
            }
            PackedHistograms {
                lo: h0.lo(),
                hi: h0.hi(),
                width: h0.width(),
                bins,
                counts,
                underflow: metrics
                    .iter()
                    .map(|m| m.inlet_histogram.underflow())
                    .collect(),
                overflow: metrics
                    .iter()
                    .map(|m| m.inlet_histogram.overflow())
                    .collect(),
            }
        });
        MetricLanes {
            slots: metrics.iter().map(|m| m.slots).collect(),
            emergency_slots: metrics.iter().map(|m| m.emergency_slots).collect(),
            emergency_events: metrics.iter().map(|m| m.emergency_events).collect(),
            outage_events: metrics.iter().map(|m| m.outage_events).collect(),
            outage_slots: metrics.iter().map(|m| m.outage_slots).collect(),
            attack_slots: metrics.iter().map(|m| m.attack_slots).collect(),
            attack_energy_kwh: metrics
                .iter()
                .map(|m| m.attack_energy.as_kilowatt_hours())
                .collect(),
            delta_t_sum_c: metrics.iter().map(|m| m.delta_t_sum.as_celsius()).collect(),
            degradation_sum: metrics.iter().map(|m| m.degradation_sum).collect(),
            degradation_slots: metrics.iter().map(|m| m.degradation_slots).collect(),
            attacker_metered_kwh: metrics
                .iter()
                .map(|m| m.attacker_metered_energy.as_kilowatt_hours())
                .collect(),
            attacker_actual_kwh: metrics
                .iter()
                .map(|m| m.attacker_actual_energy.as_kilowatt_hours())
                .collect(),
            hist,
        }
    }

    /// Writes the columns back into the lanes' `Metrics` (overwriting the
    /// fields the columns are authoritative for).
    fn fold_into(&self, metrics: &mut [Metrics]) {
        for (i, m) in metrics.iter_mut().enumerate() {
            m.slots = self.slots[i];
            m.emergency_slots = self.emergency_slots[i];
            m.emergency_events = self.emergency_events[i];
            m.outage_events = self.outage_events[i];
            m.outage_slots = self.outage_slots[i];
            m.attack_slots = self.attack_slots[i];
            m.attack_energy = Energy::from_kilowatt_hours(self.attack_energy_kwh[i]);
            m.delta_t_sum = hbm_units::TemperatureDelta::from_celsius(self.delta_t_sum_c[i]);
            m.degradation_sum = self.degradation_sum[i];
            m.degradation_slots = self.degradation_slots[i];
            m.attacker_metered_energy = Energy::from_kilowatt_hours(self.attacker_metered_kwh[i]);
            m.attacker_actual_energy = Energy::from_kilowatt_hours(self.attacker_actual_kwh[i]);
            if let Some(h) = &self.hist {
                m.inlet_histogram.set_counts(
                    &h.counts[i * h.bins..(i + 1) * h.bins],
                    h.underflow[i],
                    h.overflow[i],
                );
            }
        }
    }
}

/// A placeholder record for lanes that have not stepped yet.
fn blank_record() -> SlotRecord {
    SlotRecord {
        slot: 0,
        benign_demand: Power::ZERO,
        benign_actual: Power::ZERO,
        metered_total: Power::ZERO,
        actual_total: Power::ZERO,
        attack_load: Power::ZERO,
        battery_soc: 0.0,
        estimated_total: Power::ZERO,
        action: AttackAction::Standby,
        inlet: Temperature::from_celsius(0.0),
        capping: false,
        outage: false,
    }
}

fn blank_observation() -> Observation {
    Observation {
        slot: 0,
        battery_soc: 0.0,
        battery_stored: Energy::ZERO,
        estimated_total: Power::ZERO,
        inlet: Temperature::from_celsius(0.0),
        capping: false,
    }
}

/// A batch of simulations advanced in lockstep over structure-of-arrays
/// state (see the module docs for the determinism contract).
///
/// Build one from fully constructed [`Simulation`]s with [`BatchSim::new`],
/// Per-lane decision constants of an all-myopic batch, in the raw
/// representations `MyopicPolicy::decide` compares on (watts for the load
/// threshold, kilowatt-hours for the arming energy). Replaying its three
/// comparisons against these columns gives the exact same action sequence
/// as the trait-object call.
struct MyopicLanes {
    thresholds_w: Vec<f64>,
    arm_kwh: Vec<f64>,
}

/// Packed learner storage of an all-foresighted batch, one learner kind for
/// every lane (mixed kinds fall back to virtual dispatch).
enum LearnerLanes {
    Batch(hbm_rl::BatchLanes),
    Standard(hbm_rl::StandardLanes),
}

/// Devirtualized state of an all-[`ForesightedPolicy`] batch: per-lane
/// Q-tables packed into one contiguous `[lane × state × action]` matrix
/// (via `hbm_rl`'s lane containers), ε/learning-rate schedule evaluations
/// as packed column sweeps, and the campaign/RNG state the scalar policy
/// keeps privately hoisted into per-lane columns.
///
/// `learn_lane` and `decide_lane` replicate [`ForesightedPolicy::learn`] /
/// [`ForesightedPolicy::decide`] **op for op** — same state encoding, same
/// allowed-action order, same conditional RNG draws, same greedy comparison
/// sequence — so lane `i` stays bit-identical to the scalar policy it was
/// packed from (the batch determinism contract). The packed state is
/// authoritative while batched and synced back in
/// [`BatchSim::into_sims`].
struct ForesightedLanes {
    learner: LearnerLanes,
    params: Vec<ForesightedLaneParams>,
    campaigns: Vec<Campaign>,
    rngs: Vec<StdRng>,
    /// `decide`'s day divisor, `(1 day / slot)` truncated — deliberately
    /// *not* the rounded [`slots_per_day_at`] that `learn` transitions use
    /// (the scalar policy computes the two differently, and bit-identity
    /// means replicating both).
    decide_slots_per_day: Vec<u64>,
    /// Per-lane schedule columns for the packed sweeps.
    epsilons: Vec<EpsilonSchedule>,
    learning_rates: Vec<LearningRate>,
    /// Per-slot sweep scratch (preallocated; the steady loop allocates
    /// nothing).
    decide_days: Vec<u64>,
    learn_days: Vec<u64>,
    eps_col: Vec<f64>,
    delta_col: Vec<f64>,
    /// Day values the cached ε/δ columns were last evaluated at (0 =
    /// never; real day indices start at 1). The schedules are pure
    /// functions of the day index, so a cached column entry stays exact
    /// until its lane's day moves — the sweeps then run compacted over
    /// just the moved lanes.
    swept_decide_days: Vec<u64>,
    swept_learn_days: Vec<u64>,
    /// Gather/scatter scratch for the compacted sweeps (preallocated).
    sweep_idx: Vec<usize>,
    sweep_days: Vec<u64>,
    sweep_eps: Vec<EpsilonSchedule>,
    sweep_rates: Vec<LearningRate>,
    sweep_out: Vec<f64>,
}

impl ForesightedLanes {
    /// Packs an all-foresighted policy set. `None` when any lane is not a
    /// [`ForesightedPolicy`], the lanes mix learner kinds, or the table
    /// shapes disagree — those batches keep the virtual dispatch path.
    fn from_policies(policies: &[Box<dyn AttackPolicy>]) -> Option<ForesightedLanes> {
        let ps: Vec<&ForesightedPolicy> = policies
            .iter()
            .map(|p| p.as_any().downcast_ref::<ForesightedPolicy>())
            .collect::<Option<_>>()?;
        let learner = match ps[0].learner() {
            Learner::Batch(_) => {
                let agents: Vec<&hbm_rl::BatchQLearning> = ps
                    .iter()
                    .map(|p| match p.learner() {
                        Learner::Batch(a) => Some(a),
                        Learner::Standard(_) => None,
                    })
                    .collect::<Option<_>>()?;
                LearnerLanes::Batch(hbm_rl::BatchLanes::from_agents(&agents)?)
            }
            Learner::Standard(_) => {
                let agents: Vec<&hbm_rl::QLearning> = ps
                    .iter()
                    .map(|p| match p.learner() {
                        Learner::Standard(a) => Some(a),
                        Learner::Batch(_) => None,
                    })
                    .collect::<Option<_>>()?;
                LearnerLanes::Standard(hbm_rl::StandardLanes::from_agents(&agents)?)
            }
        };
        let params: Vec<ForesightedLaneParams> = ps.iter().map(|p| p.lane_params()).collect();
        let lanes = ps.len();
        Some(ForesightedLanes {
            learner,
            campaigns: ps.iter().map(|p| p.campaign()).collect(),
            rngs: ps
                .iter()
                .map(|p| StdRng::from_state(p.rng_state()))
                .collect(),
            decide_slots_per_day: params
                .iter()
                .map(|p| (Duration::from_days(1.0) / p.slot) as u64)
                .collect(),
            epsilons: params.iter().map(|p| p.epsilon).collect(),
            learning_rates: params.iter().map(|p| p.learning_rate).collect(),
            params,
            decide_days: vec![0; lanes],
            learn_days: vec![0; lanes],
            eps_col: vec![0.0; lanes],
            delta_col: vec![0.0; lanes],
            swept_decide_days: vec![0; lanes],
            swept_learn_days: vec![0; lanes],
            sweep_idx: Vec::with_capacity(lanes),
            sweep_days: Vec::with_capacity(lanes),
            sweep_eps: Vec::with_capacity(lanes),
            sweep_rates: Vec::with_capacity(lanes),
            sweep_out: Vec::with_capacity(lanes),
        })
    }

    /// Evaluates every lane's ε and δ schedules for this slot as two packed
    /// column sweeps, memoized by day. The schedules are pure functions of
    /// the day index, so eagerly evaluating lanes that end up not consuming
    /// the value (teacher phase, campaign early returns, no pending
    /// transition, outage) is value-neutral, and a cached entry can be
    /// reused verbatim until the lane's day moves; where a lane *does*
    /// consume it, the sweep element is bit-identical to the scalar `at`
    /// call it replaces (property-pinned in `hbm-rl`).
    ///
    /// Must run before any pending transition is taken: the δ column is
    /// derived from the pendings' observation slots.
    fn sweep_schedules(
        &mut self,
        records: &[SlotRecord],
        pendings: &[Option<PendingTransition>],
        slots_per_day: u64,
    ) {
        for i in 0..self.params.len() {
            // decide: `day = obs.slot / (1 day / slot) + 1` (un-rounded).
            self.decide_days[i] = records[i].slot / self.decide_slots_per_day[i] + 1;
            // learn: `δ = learning_rate.at(t.day + 1)` with
            // `t.day = pending.observation.slot / slots_per_day` (rounded).
            self.learn_days[i] = pendings[i]
                .as_ref()
                .map_or(0, |p| p.observation.slot / slots_per_day)
                + 1;
        }
        // ε: re-evaluate only the lanes whose decide day moved (about once
        // per simulated day per lane); the cached column entries are exact
        // for unmoved days, so the packed sweep runs compacted.
        self.sweep_idx.clear();
        self.sweep_days.clear();
        self.sweep_eps.clear();
        for i in 0..self.decide_days.len() {
            if self.decide_days[i] != self.swept_decide_days[i] {
                self.sweep_idx.push(i);
                self.sweep_days.push(self.decide_days[i]);
                self.sweep_eps.push(self.epsilons[i]);
            }
        }
        if !self.sweep_idx.is_empty() {
            self.sweep_out.clear();
            self.sweep_out.resize(self.sweep_idx.len(), 0.0);
            epsilon_sweep(&self.sweep_eps, &self.sweep_days, &mut self.sweep_out);
            for (k, &i) in self.sweep_idx.iter().enumerate() {
                self.eps_col[i] = self.sweep_out[k];
                self.swept_decide_days[i] = self.decide_days[i];
            }
        }
        // δ: same compaction keyed on the learn day (moves when a lane's
        // pending transition is re-armed).
        self.sweep_idx.clear();
        self.sweep_days.clear();
        self.sweep_rates.clear();
        for i in 0..self.learn_days.len() {
            if self.learn_days[i] != self.swept_learn_days[i] {
                self.sweep_idx.push(i);
                self.sweep_days.push(self.learn_days[i]);
                self.sweep_rates.push(self.learning_rates[i]);
            }
        }
        if !self.sweep_idx.is_empty() {
            self.sweep_out.clear();
            self.sweep_out.resize(self.sweep_idx.len(), 0.0);
            learning_rate_sweep(&self.sweep_rates, &self.sweep_days, &mut self.sweep_out);
            for (k, &i) in self.sweep_idx.iter().enumerate() {
                self.delta_col[i] = self.sweep_out[k];
                self.swept_learn_days[i] = self.learn_days[i];
            }
        }
    }

    /// [`ForesightedPolicy::learn`] on lane `i`, against the packed tables.
    fn learn_lane(&mut self, i: usize, t: &Transition) {
        let p = self.params[i];
        if !p.learning_enabled {
            return;
        }
        let s = p.state_of(
            t.observation.battery_soc,
            t.observation.estimated_total,
            t.observation.inlet,
        );
        let s_next = p.state_of(t.next_battery_soc, t.next_estimated_total, t.inlet);
        let stored_ok = can_attack(t.next_battery_stored, p.attack_load, p.slot);
        let allowed_next = p.allowed_for_soc(t.next_battery_soc, stored_ok);
        let reward = p.reward(t.inlet, t.action);
        // The sweep evaluated this lane's δ from the same pending this
        // transition was built from.
        debug_assert_eq!(self.learn_days[i], t.day + 1);
        let delta = self.delta_col[i];
        match &mut self.learner {
            LearnerLanes::Batch(l) => l.update(
                i,
                s,
                t.action.index(),
                reward,
                s_next,
                &allowed_next,
                |s, a| p.post_state(s, a),
                delta,
            ),
            LearnerLanes::Standard(l) => l.update(
                i,
                s,
                t.action.index(),
                reward,
                s_next,
                &allowed_next,
                delta,
            ),
        }
    }

    /// [`ForesightedPolicy::decide`] on lane `i`, against the packed tables
    /// and hoisted campaign/RNG columns.
    fn decide_lane(&mut self, i: usize, obs: &Observation) -> AttackAction {
        let p = self.params[i];
        if obs.capping {
            if let Campaign::Attacking { launch_est } = self.campaigns[i] {
                self.campaigns[i] = Campaign::Recharging { launch_est };
            }
            return AttackAction::Standby;
        }
        let s = p.state_of(obs.battery_soc, obs.estimated_total, obs.inlet);
        let stored_ok = can_attack(obs.battery_stored, p.attack_load, p.slot);

        let load_collapsed =
            |launch_est: Power| obs.estimated_total < launch_est - Power::from_kilowatts(0.4);
        let ineffective =
            obs.estimated_total + p.attack_load < p.capacity + Power::from_kilowatts(0.25);
        match self.campaigns[i] {
            Campaign::Attacking { launch_est } => {
                if load_collapsed(launch_est) || ineffective {
                    self.campaigns[i] = Campaign::Idle;
                } else if !stored_ok {
                    self.campaigns[i] = Campaign::Recharging { launch_est };
                } else {
                    return AttackAction::Attack;
                }
            }
            Campaign::Recharging { launch_est } => {
                if load_collapsed(launch_est) || ineffective {
                    self.campaigns[i] = Campaign::Idle;
                } else if obs.battery_soc >= p.min_launch_soc && stored_ok {
                    self.campaigns[i] = Campaign::Attacking { launch_est };
                    return AttackAction::Attack;
                } else {
                    return AttackAction::Charge;
                }
            }
            Campaign::Idle => {}
        }

        let allowed = p.allowed_for_soc(obs.battery_soc, stored_ok);
        let day = self.decide_days[i];
        debug_assert_eq!(day, obs.slot / self.decide_slots_per_day[i] + 1);

        if p.learning_enabled && day <= p.teacher_days {
            return if obs.estimated_total >= p.teacher_threshold
                && obs.battery_soc >= p.min_launch_soc
                && stored_ok
            {
                self.campaigns[i] = Campaign::Attacking {
                    launch_est: obs.estimated_total,
                };
                AttackAction::Attack
            } else if obs.battery_soc < 1.0 {
                AttackAction::Charge
            } else {
                AttackAction::Standby
            };
        }

        let eps = if p.learning_enabled {
            self.eps_col[i]
        } else {
            0.0
        };
        // Same conditional draws as the scalar policy: no RNG output is
        // consumed unless ε is strictly positive, and the index draw only
        // happens on the explore branch.
        let a = if eps > 0.0 && self.rngs[i].random::<f64>() < eps {
            allowed[self.rngs[i].random_range(0..allowed.len())]
        } else {
            match &self.learner {
                LearnerLanes::Batch(l) => l.select_greedy(i, s, &allowed, |s, a| p.post_state(s, a)),
                LearnerLanes::Standard(l) => l.select_greedy(i, s, &allowed),
            }
        };
        let action = AttackAction::from_index(a);
        if action == AttackAction::Attack {
            self.campaigns[i] = Campaign::Attacking {
                launch_est: obs.estimated_total,
            };
        }
        action
    }

    /// Flows lane `i`'s packed state (tables, RNG, campaign) back into the
    /// scalar policy it was packed from.
    fn sync_into_policy(&self, i: usize, policy: &mut ForesightedPolicy) {
        match (&self.learner, policy.learner_mut()) {
            (LearnerLanes::Batch(l), Learner::Batch(agent)) => {
                l.sync_into(i, agent).expect("lane shape matches its source");
            }
            (LearnerLanes::Standard(l), Learner::Standard(agent)) => {
                l.sync_into(i, agent).expect("lane shape matches its source");
            }
            _ => unreachable!("lane learner kind matches the policy it was packed from"),
        }
        policy.restore_rng(self.rngs[i].state());
        policy.set_campaign(self.campaigns[i]);
    }
}

/// drive it with [`step_all`](BatchSim::step_all) or
/// [`run`](BatchSim::run), then collect results with
/// [`take_reports`](BatchSim::take_reports) and hand the scenarios back with
/// [`into_sims`](BatchSim::into_sims).
pub struct BatchSim {
    // ---- Per-lane scenario components (AoS; cold per slot). ----
    configs: Vec<ColoConfig>,
    traces: Vec<Arc<PowerTrace>>,
    /// Parameter template per lane; live inlet state is in `zones`.
    zone_models: Vec<ZoneModel>,
    protocols: Vec<EmergencyProtocol>,
    batteries: Vec<Battery>,
    side_channels: Vec<VoltageSideChannel>,
    policies: Vec<Box<dyn AttackPolicy>>,
    slot_indices: Vec<u64>,
    /// Per-lane result metrics. The per-slot accumulators live in
    /// `metric_lanes` while batched and are folded back in before metrics
    /// leave the batch (`take_reports` / `into_sims`).
    metrics: Vec<Metrics>,
    metric_lanes: MetricLanes,
    pendings: Vec<Option<PendingTransition>>,
    outage_remainings: Vec<Option<Duration>>,
    prev_cappings: Vec<bool>,
    /// The attacker's EMA estimate filter, split into SoA columns (value in
    /// watts + initialized flag) so the dense path can update every lane in
    /// one packed pass; `Option<Power>` is materialized on
    /// [`into_sims`](BatchSim::into_sims).
    filter_w: Vec<f64>,
    filter_set: Vec<bool>,
    recorders: Vec<Option<Box<dyn Recorder>>>,
    /// Cached [`AttackPolicy::wants_learn`]; lanes with `false` skip the
    /// pending-transition bookkeeping entirely.
    wants_learn: Vec<bool>,
    /// Set when every lane runs a [`MyopicPolicy`]: its `decide` is three
    /// scalar comparisons on values the step loop already holds, so the
    /// whole fleet skips the observation build and the trait-object call.
    myopic: Option<MyopicLanes>,
    /// Set when every lane runs a [`ForesightedPolicy`] with one learner
    /// kind and one table shape: Q-tables pack into a single contiguous
    /// lane-major matrix, schedule evaluations become packed column sweeps,
    /// and learn/decide run without the trait-object call (see
    /// [`ForesightedLanes`]). The packed state is authoritative while
    /// batched; [`into_sims`](BatchSim::into_sims) syncs it back.
    foresighted: Option<ForesightedLanes>,

    // ---- Per-lane config invariants, hoisted into dense arrays. ----
    // `ColoConfig` spans several cache lines per lane; the hot phases only
    // need these scalars, so precomputing them once (the same derivation
    // `Simulation::step` performs per slot — identical values) turns the
    // per-slot config traffic into sequential one-value-per-lane loads.
    benign_caps: Vec<Power>,
    benign_emergency_caps: Vec<Power>,
    attacker_caps: Vec<Power>,
    /// `attacker_caps` in raw watts, for the packed filter pass.
    attacker_caps_w: Vec<f64>,
    attacker_emergency_caps: Vec<Power>,
    ema_alphas: Vec<f64>,
    standby_powers: Vec<Power>,
    attack_loads: Vec<Power>,
    max_charge_rates: Vec<Power>,
    charge_efficiencies: Vec<f64>,
    supplies: Vec<Temperature>,
    outage_downtimes: Vec<Duration>,
    /// Per-lane wrapping cursor into the trace (`slot_index % trace_len`,
    /// maintained incrementally — no per-slot integer division). Unused (and
    /// not maintained) while `packed_traces` is `Some`.
    trace_positions: Vec<u32>,
    /// Slot-major transpose of all lanes' traces (`[pos · lanes + i]`),
    /// built when every lane shares one trace length and one starting
    /// cursor. Phase 1 then reads one contiguous lanes-wide row per slot
    /// instead of gathering from `lanes` separate heap allocations. Costs
    /// one extra copy of the trace data; `None` on ragged batches.
    packed_traces: Option<Vec<Power>>,
    /// Shared trace cursor for the `packed_traces` fast path. Lanes advance
    /// their cursors in lockstep (every lane, every slot, outage or not), so
    /// a batch that starts uniform stays uniform forever.
    uniform_pos: u32,

    // ---- SoA hot state. ----
    zones: ZoneLanes,
    /// Side-channel RNG/wander/params in column-wise form; the authoritative
    /// noise state while batched (`side_channels` holds the cold template,
    /// re-synced on [`into_sims`](BatchSim::into_sims)).
    sc_lanes: ChannelLanes,

    // ---- Shared batch invariants. ----
    slot: Duration,
    slots_per_day: u64,

    // ---- Preallocated per-slot scratch (no steady-state allocations). ----
    /// Lane indices not in outage downtime this slot.
    active: Vec<u32>,
    /// Per-lane IT heat load fed to the zone pass, watts.
    loads_w: Vec<f64>,
    /// Packed side-channel uniforms/normals, `NORMALS_PER_ESTIMATE` per
    /// active lane. Draw-major (`u[k·lanes + i]`) on the dense path,
    /// lane-major compacted over `active` on the mixed path; the Box–Muller
    /// pass is element-wise, so both layouts share the buffers.
    u1: Vec<f64>,
    u2: Vec<f64>,
    z: Vec<f64>,
    /// Benign actuals in watts (dense-path input to the packed estimate).
    benign_w: Vec<f64>,
    /// Per-lane capping flags for the slot (written by phase 1, read by the
    /// packed filter pass).
    cappings: Vec<bool>,
    /// Raw estimates in watts (dense-path output of the packed estimate).
    est_w: Vec<f64>,
    raw_estimates: Vec<Power>,
    att_metered: Vec<Power>,
    att_actual: Vec<Power>,
    observations: Vec<Observation>,
    records: Vec<SlotRecord>,
}

impl BatchSim {
    /// Builds a batch from fully constructed simulations (one lane each).
    ///
    /// # Panics
    ///
    /// Panics if `sims` is empty or the scenarios disagree on the slot
    /// length (the batch advances all lanes by one shared slot at a time).
    pub fn new(sims: Vec<Simulation>) -> BatchSim {
        assert!(!sims.is_empty(), "batch needs at least one scenario");
        let lanes = sims.len();
        let mut configs = Vec::with_capacity(lanes);
        let mut traces = Vec::with_capacity(lanes);
        let mut zone_models = Vec::with_capacity(lanes);
        let mut protocols = Vec::with_capacity(lanes);
        let mut batteries = Vec::with_capacity(lanes);
        let mut side_channels = Vec::with_capacity(lanes);
        let mut policies = Vec::with_capacity(lanes);
        let mut slot_indices = Vec::with_capacity(lanes);
        let mut metrics = Vec::with_capacity(lanes);
        let mut pendings = Vec::with_capacity(lanes);
        let mut outage_remainings = Vec::with_capacity(lanes);
        let mut prev_cappings = Vec::with_capacity(lanes);
        let mut filter_w = Vec::with_capacity(lanes);
        let mut filter_set = Vec::with_capacity(lanes);
        let mut recorders = Vec::with_capacity(lanes);
        for sim in sims {
            let parts = sim.into_parts();
            configs.push(parts.config);
            traces.push(parts.trace);
            zone_models.push(parts.zone);
            protocols.push(parts.protocol);
            batteries.push(parts.battery);
            side_channels.push(parts.side_channel);
            policies.push(parts.policy);
            slot_indices.push(parts.slot_index);
            metrics.push(parts.metrics);
            pendings.push(parts.pending);
            outage_remainings.push(parts.outage_remaining);
            prev_cappings.push(parts.prev_capping);
            filter_w.push(parts.estimate_filter.map_or(0.0, |p| p.as_watts()));
            filter_set.push(parts.estimate_filter.is_some());
            recorders.push(parts.recorder);
        }
        let slot = configs[0].slot;
        assert!(
            configs.iter().all(|c| c.slot == slot),
            "all lanes must share the slot length"
        );
        let metric_lanes = MetricLanes::from_metrics(&metrics);
        let zones = ZoneLanes::from_models(&zone_models);
        let sc_lanes = ChannelLanes::from_channels(&side_channels);
        let wants_learn = policies.iter().map(|p| p.wants_learn()).collect();
        let myopic = policies
            .iter()
            .map(|p| p.as_any().downcast_ref::<MyopicPolicy>())
            .collect::<Option<Vec<_>>>()
            .map(|ps| MyopicLanes {
                thresholds_w: ps.iter().map(|p| p.threshold().as_watts()).collect(),
                arm_kwh: ps
                    .iter()
                    .map(|p| p.arm_energy().as_kilowatt_hours())
                    .collect(),
            });
        let foresighted = if myopic.is_some() {
            None
        } else {
            ForesightedLanes::from_policies(&policies)
        };
        let benign_caps = configs.iter().map(|c| c.benign_capacity()).collect();
        let benign_emergency_caps = configs.iter().map(|c| c.benign_emergency_cap()).collect();
        let attacker_caps: Vec<Power> = configs.iter().map(|c| c.attacker_capacity).collect();
        let attacker_caps_w = attacker_caps.iter().map(|p| p.as_watts()).collect();
        let attacker_emergency_caps = configs.iter().map(|c| c.attacker_emergency_cap()).collect();
        let ema_alphas = configs.iter().map(|c| c.estimate_ema_alpha).collect();
        let standby_powers = configs.iter().map(|c| c.standby_power).collect();
        let attack_loads = configs.iter().map(|c| c.attack_load).collect();
        let max_charge_rates = configs.iter().map(|c| c.battery.max_charge_rate).collect();
        let charge_efficiencies = configs
            .iter()
            .map(|c| c.battery.charge_efficiency)
            .collect();
        let supplies = configs.iter().map(|c| c.cooling.supply).collect();
        let outage_downtimes = configs.iter().map(|c| c.outage_downtime).collect();
        let trace_positions: Vec<u32> = slot_indices
            .iter()
            .zip(&traces)
            .map(|(&k, t)| (k % t.len() as u64) as u32)
            .collect();
        let trace_len = traces[0].len();
        let uniform = traces.iter().all(|t| t.len() == trace_len)
            && trace_positions.iter().all(|&p| p == trace_positions[0]);
        let packed_traces = if uniform {
            let mut packed = Vec::with_capacity(trace_len * lanes);
            for pos in 0..trace_len {
                packed.extend(traces.iter().map(|t| t.samples()[pos]));
            }
            Some(packed)
        } else {
            None
        };
        let uniform_pos = trace_positions[0];
        BatchSim {
            configs,
            traces,
            zone_models,
            protocols,
            batteries,
            side_channels,
            policies,
            slot_indices,
            metrics,
            metric_lanes,
            pendings,
            outage_remainings,
            prev_cappings,
            filter_w,
            filter_set,
            recorders,
            wants_learn,
            myopic,
            foresighted,
            benign_caps,
            benign_emergency_caps,
            attacker_caps,
            attacker_caps_w,
            attacker_emergency_caps,
            ema_alphas,
            standby_powers,
            attack_loads,
            max_charge_rates,
            charge_efficiencies,
            supplies,
            outage_downtimes,
            trace_positions,
            packed_traces,
            uniform_pos,
            zones,
            sc_lanes,
            slot,
            slots_per_day: slots_per_day_at(slot),
            active: Vec::with_capacity(lanes),
            loads_w: vec![0.0; lanes],
            u1: vec![0.0; lanes * NORMALS_PER_ESTIMATE],
            u2: vec![0.0; lanes * NORMALS_PER_ESTIMATE],
            z: vec![0.0; lanes * NORMALS_PER_ESTIMATE],
            benign_w: vec![0.0; lanes],
            cappings: vec![false; lanes],
            est_w: vec![0.0; lanes],
            raw_estimates: vec![Power::ZERO; lanes],
            att_metered: vec![Power::ZERO; lanes],
            att_actual: vec![Power::ZERO; lanes],
            observations: vec![blank_observation(); lanes],
            records: vec![blank_record(); lanes],
        }
    }

    /// Number of lanes (scenarios) in the batch.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the batch is empty (never true for constructed batches).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The shared slot length.
    pub fn slot(&self) -> Duration {
        self.slot
    }

    /// Whether this batch devirtualized its learning lanes — true only for
    /// an all-[`ForesightedPolicy`] batch with one learner kind and one
    /// table shape. Tests assert on this so a silent fallback to virtual
    /// dispatch (still correct, just slower) cannot hide.
    pub fn learning_devirtualized(&self) -> bool {
        self.foresighted.is_some()
    }

    /// The last slot's records, one per lane ([`blank`](SlotRecord) before
    /// the first [`step_all`](BatchSim::step_all)).
    pub fn records(&self) -> &[SlotRecord] {
        &self.records
    }

    /// Advances every lane by one slot and returns the number of lanes that
    /// spent the slot in outage downtime.
    ///
    /// Phase structure (matching [`Simulation::step`] per lane, op for op):
    ///
    /// 1. slot bookkeeping and benign tenants (scalar sweep);
    /// 2. side-channel uniform draws, compacted over non-outage lanes;
    /// 3. one packed Box–Muller pass over all lanes' normals (vectorized);
    /// 4. estimate → learn → decide → act (virtual dispatch per lane;
    ///    all-myopic and all-foresighted fleets devirtualize — the latter
    ///    with packed Q-table lanes and schedule column sweeps);
    /// 5. zone thermal pass over the whole batch ([`ZoneLanes::step_all`]);
    /// 6. protocol, metrics, and record finalization (scalar sweep).
    pub fn step_all(&mut self) -> u32 {
        let started = hbm_telemetry::timing::start();
        let slot = self.slot;
        let lanes = self.len();
        self.active.clear();
        // ---- Phase 1: slot bookkeeping + benign tenants. ----
        // Take the transposed traces out of `self` so the demand row can be
        // borrowed across the (mutating) lane loop; restored right after.
        let packed_traces = self.packed_traces.take();
        let row: Option<&[Power]> = packed_traces.as_deref().map(|packed| {
            let at = self.uniform_pos as usize * lanes;
            self.uniform_pos += 1;
            if self.uniform_pos as usize * lanes == packed.len() {
                self.uniform_pos = 0;
            }
            &packed[at..at + lanes]
        });
        for i in 0..lanes {
            let k = self.slot_indices[i];
            self.slot_indices[i] += 1;
            // One contiguous lanes-wide row on the uniform fast path; the
            // ragged fallback gathers from each lane's own trace (and is the
            // only consumer of the per-lane cursors).
            let benign_demand = match row {
                Some(r) => r[i],
                None => {
                    let pos = self.trace_positions[i] as usize;
                    self.trace_positions[i] += 1;
                    if self.trace_positions[i] as usize == self.traces[i].len() {
                        self.trace_positions[i] = 0;
                    }
                    self.traces[i].samples()[pos]
                }
            };
            if self.outage_remainings[i].is_some() {
                // Outage downtime: everything is off; the zone pass cools
                // the lane at zero load and phase 6 finishes the books.
                self.loads_w[i] = 0.0;
                self.benign_w[i] = 0.0;
                self.raw_estimates[i] = Power::ZERO;
                self.records[i] = SlotRecord {
                    slot: k,
                    benign_demand: Power::ZERO,
                    benign_actual: Power::ZERO,
                    metered_total: Power::ZERO,
                    actual_total: Power::ZERO,
                    attack_load: Power::ZERO,
                    battery_soc: self.batteries[i].state_of_charge(),
                    estimated_total: Power::ZERO,
                    action: AttackAction::Standby,
                    inlet: Temperature::from_celsius(0.0), // phase 6
                    capping: false,
                    outage: true,
                };
            } else {
                self.active.push(i as u32);
                // `prev_cappings` is invariantly the protocol's capping
                // state as of the end of the previous slot (phase 6 and the
                // outage path both maintain it), so the protocol struct
                // itself stays untouched until phase 6.
                let capping = self.prev_cappings[i];
                debug_assert_eq!(capping, self.protocols[i].state().is_capping());
                let benign_limit = if capping {
                    self.benign_emergency_caps[i]
                } else {
                    self.benign_caps[i]
                };
                let benign_actual = benign_demand.min(benign_limit);
                // Dense columns feeding the packed estimate + filter passes.
                self.benign_w[i] = benign_actual.as_watts();
                self.cappings[i] = capping;
                let r = &mut self.records[i];
                r.slot = k;
                r.benign_demand = benign_demand;
                r.benign_actual = benign_actual;
                r.capping = capping;
                r.outage = false;
            }
        }
        self.packed_traces = packed_traces;

        // ---- Phase 2: side-channel uniforms. ----
        // Hoisting the draws ahead of the estimate is value-identical: the
        // uniforms are input-independent and drawn in the same RNG order.
        let n_active = self.active.len();
        let dense = n_active == lanes;
        if dense {
            // Every lane participates: one packed xoshiro sweep over the
            // whole batch (draw-major layout).
            self.sc_lanes.draw_all(&mut self.u1, &mut self.u2);
        } else {
            let mut tmp = [0.0; 2 * NORMALS_PER_ESTIMATE];
            for j in 0..n_active {
                let i = self.active[j] as usize;
                self.sc_lanes.draw_uniforms_lane(i, &mut tmp);
                let at = j * NORMALS_PER_ESTIMATE;
                self.u1[at..at + NORMALS_PER_ESTIMATE]
                    .copy_from_slice(&tmp[..NORMALS_PER_ESTIMATE]);
                self.u2[at..at + NORMALS_PER_ESTIMATE]
                    .copy_from_slice(&tmp[NORMALS_PER_ESTIMATE..]);
            }
        }

        // ---- Phase 3: packed Box–Muller across the whole batch. ----
        let packed = n_active * NORMALS_PER_ESTIMATE;
        box_muller_slice(
            &self.u1[..packed],
            &self.u2[..packed],
            &mut self.z[..packed],
        );

        // ---- Phase 4: estimate, learn, decide, act. ----
        if dense {
            // Packed measurement-model pass over all lanes (inputs were laid
            // down column-wise by phase 1), then a packed raw-estimate + EMA
            // filter pass. Per lane these are the exact f64 sequences of the
            // scalar path below — `Power` arithmetic is plain arithmetic on
            // watts — just strip-mined over the batch.
            self.sc_lanes
                .estimate_all(&self.benign_w, &self.z, &mut self.est_w);
            for i in 0..lanes {
                let raw_estimate = self.est_w[i] + self.attacker_caps_w[i];
                let alpha = self.ema_alphas[i];
                let filtered = if !self.filter_set[i] {
                    raw_estimate
                } else if self.cappings[i] {
                    // Capped slots carry no information about the underlying
                    // demand; freeze the filter (see Simulation::step_inner).
                    self.filter_w[i]
                } else {
                    self.filter_w[i] * (1.0 - alpha) + raw_estimate * alpha
                };
                self.filter_w[i] = filtered;
                self.filter_set[i] = true;
                self.est_w[i] = raw_estimate;
            }
        }
        if let Some(fl) = &mut self.foresighted {
            // Packed ε/δ schedule sweeps for the whole fleet, before any
            // pending transition is taken (the δ column reads them).
            fl.sweep_schedules(&self.records, &self.pendings, self.slots_per_day);
        }
        for j in 0..n_active {
            let i = self.active[j] as usize;
            let k = self.records[i].slot;
            let benign_actual = self.records[i].benign_actual;
            let capping = self.records[i].capping;

            let (raw_estimate, estimated_total) = if dense {
                (
                    Power::from_watts(self.est_w[i]),
                    Power::from_watts(self.filter_w[i]),
                )
            } else {
                let at = j * NORMALS_PER_ESTIMATE;
                let mut z4 = [0.0; NORMALS_PER_ESTIMATE];
                z4.copy_from_slice(&self.z[at..at + NORMALS_PER_ESTIMATE]);
                let raw = self.sc_lanes.estimate_lane(i, benign_actual, &z4);
                let raw_estimate = raw + self.attacker_caps[i];
                let alpha = self.ema_alphas[i];
                let estimated_total = if !self.filter_set[i] {
                    raw_estimate
                } else if capping {
                    Power::from_watts(self.filter_w[i])
                } else {
                    Power::from_watts(self.filter_w[i]) * (1.0 - alpha) + raw_estimate * alpha
                };
                self.filter_w[i] = estimated_total.as_watts();
                self.filter_set[i] = true;
                (raw_estimate, estimated_total)
            };
            let action = if let Some(my) = &self.myopic {
                // All-myopic fleet: replay `MyopicPolicy::decide`'s three
                // comparisons directly (same order, same raw-unit
                // representations), skipping the observation build and the
                // indirect call. Myopic never learns, so the learn path
                // below is dead for every lane of such a batch.
                if capping {
                    AttackAction::Standby
                } else if estimated_total.as_watts() >= my.thresholds_w[i]
                    && self.batteries[i].stored().as_kilowatt_hours() >= my.arm_kwh[i]
                {
                    AttackAction::Attack
                } else if self.batteries[i].state_of_charge() < 1.0 {
                    AttackAction::Charge
                } else {
                    AttackAction::Standby
                }
            } else {
                let observation = Observation {
                    slot: k,
                    battery_soc: self.batteries[i].state_of_charge(),
                    battery_stored: self.batteries[i].stored(),
                    estimated_total,
                    inlet: self.zones.inlet(i),
                    capping,
                };

                // Non-learning lanes never have a pending transition and
                // never read `observations` back (phase 6 skips them too),
                // so the whole learn path — including the 100-byte
                // `pendings` sweep — collapses to this one flag test.
                if self.wants_learn[i] {
                    if let Some(p) = self.pendings[i].take() {
                        let transition = Transition {
                            observation: p.observation,
                            action: p.action,
                            inlet: p.inlet,
                            next_battery_soc: p.next_battery_soc,
                            next_battery_stored: p.next_battery_stored,
                            next_estimated_total: estimated_total,
                            next_capping: capping,
                            day: p.observation.slot / self.slots_per_day,
                        };
                        match &mut self.foresighted {
                            Some(fl) => fl.learn_lane(i, &transition),
                            None => self.policies[i].learn(&transition),
                        }
                    }
                    self.observations[i] = observation;
                }

                match &mut self.foresighted {
                    Some(fl) => fl.decide_lane(i, &observation),
                    None => self.policies[i].decide(&observation),
                }
            };
            let attacker_metered_limit = if capping {
                self.attacker_emergency_caps[i]
            } else {
                self.attacker_caps[i]
            };
            let (attacker_metered, attacker_actual, battery_attack) = match action {
                AttackAction::Attack => {
                    let metered = attacker_metered_limit;
                    let delivered = self.batteries[i].discharge(self.attack_loads[i], slot);
                    (metered, metered + delivered, delivered)
                }
                AttackAction::Charge => {
                    let headroom =
                        (attacker_metered_limit - self.standby_powers[i]).positive_part();
                    let drawn =
                        self.batteries[i].charge(self.max_charge_rates[i].min(headroom), slot);
                    let standby = self.standby_powers[i].min(attacker_metered_limit);
                    let loss = drawn * (1.0 - self.charge_efficiencies[i]);
                    (standby + drawn, standby + loss, Power::ZERO)
                }
                AttackAction::Standby => {
                    let standby = self.standby_powers[i].min(attacker_metered_limit);
                    (standby, standby, Power::ZERO)
                }
            };

            let metered_total = benign_actual + attacker_metered;
            let actual_total = benign_actual + attacker_actual;
            self.loads_w[i] = actual_total.as_watts();
            self.att_metered[i] = attacker_metered;
            self.att_actual[i] = attacker_actual;
            self.raw_estimates[i] = raw_estimate;
            let r = &mut self.records[i];
            r.metered_total = metered_total;
            r.actual_total = actual_total;
            r.attack_load = battery_attack;
            r.battery_soc = self.batteries[i].state_of_charge();
            r.estimated_total = estimated_total;
            r.action = action;
        }

        // ---- Phase 5: zone thermal pass over the whole batch. ----
        self.zones.step_all(&self.loads_w, slot);

        // ---- Phase 6: protocol, metrics, record finalization. ----
        let mut down: u32 = 0;
        for i in 0..lanes {
            let inlet = self.zones.inlet(i);
            let inlet_c = inlet.as_celsius();
            self.records[i].inlet = inlet;
            self.metric_lanes.slots[i] += 1;
            if self.records[i].outage {
                down += 1;
                self.metric_lanes.outage_slots[i] += 1;
                match &mut self.metric_lanes.hist {
                    Some(h) => h.add(i, inlet_c),
                    None => self.metrics[i].inlet_histogram.add(inlet_c),
                }
                let left = self.outage_remainings[i].expect("outage lane") - slot;
                if left > Duration::ZERO {
                    self.outage_remainings[i] = Some(left);
                } else {
                    self.outage_remainings[i] = None;
                    self.protocols[i].reset();
                }
                self.pendings[i] = None; // the attacker's episode is over
                self.prev_cappings[i] = false;
            } else {
                let capping = self.records[i].capping;
                let next_state = self.protocols[i].step(inlet, slot);
                if next_state.is_outage() {
                    self.metric_lanes.outage_events[i] += 1;
                    self.outage_remainings[i] = Some(self.outage_downtimes[i]);
                }
                let capping_next = next_state.is_capping();
                if capping_next && !self.prev_cappings[i] {
                    self.metric_lanes.emergency_events[i] += 1;
                }
                self.prev_cappings[i] = capping_next;

                if capping {
                    self.metric_lanes.emergency_slots[i] += 1;
                    let u_inst =
                        (self.records[i].benign_demand / self.benign_caps[i]).clamp(0.0, 1.0);
                    let load_frac = self.configs[i].latency.rated_load() * u_inst;
                    let degradation = self.configs[i]
                        .latency
                        .degradation(self.configs[i].emergency_cap_fraction(), load_frac);
                    self.metric_lanes.degradation_sum[i] += degradation;
                    self.metric_lanes.degradation_slots[i] += 1;
                }
                let battery_attack = self.records[i].attack_load;
                if battery_attack > Power::ZERO {
                    self.metric_lanes.attack_slots[i] += 1;
                    self.metric_lanes.attack_energy_kwh[i] +=
                        (battery_attack * slot).as_kilowatt_hours();
                }
                self.metric_lanes.delta_t_sum_c[i] +=
                    (inlet - self.supplies[i]).positive_part().as_celsius();
                match &mut self.metric_lanes.hist {
                    Some(h) => h.add(i, inlet_c),
                    None => self.metrics[i].inlet_histogram.add(inlet_c),
                }
                self.metric_lanes.attacker_metered_kwh[i] +=
                    (self.att_metered[i] * slot).as_kilowatt_hours();
                self.metric_lanes.attacker_actual_kwh[i] +=
                    (self.att_actual[i] * slot).as_kilowatt_hours();

                if self.wants_learn[i] {
                    self.pendings[i] = Some(PendingTransition {
                        observation: self.observations[i],
                        action: self.records[i].action,
                        inlet,
                        next_battery_soc: self.batteries[i].state_of_charge(),
                        next_battery_stored: self.batteries[i].stored(),
                    });
                }
            }
            if let Some(rec) = self.recorders[i].as_mut() {
                emit_sample(rec.as_mut(), &self.records[i], self.raw_estimates[i]);
            }
        }
        hbm_telemetry::timing::record_span_units("batch.step", started, lanes as u64);
        down
    }

    /// Runs `slots` slots and returns the per-slot count of lanes that were
    /// down (in outage downtime) — the fleet availability signal.
    pub fn run(&mut self, slots: u64) -> Vec<u32> {
        let mut down = Vec::with_capacity(slots as usize);
        for _ in 0..slots {
            down.push(self.step_all());
        }
        down
    }

    /// Like [`run`](BatchSim::run), but additionally collects every lane's
    /// per-slot [`SlotRecord`]s, lane-major (`records[i][t]`) — what the
    /// experiment harness needs to post-process a batched
    /// [`Simulation::run_recorded`] equivalent.
    pub fn run_recorded(&mut self, slots: u64) -> (Vec<u32>, Vec<Vec<SlotRecord>>) {
        let mut down = Vec::with_capacity(slots as usize);
        let mut records: Vec<Vec<SlotRecord>> = (0..self.len())
            .map(|_| Vec::with_capacity(slots as usize))
            .collect();
        for _ in 0..slots {
            down.push(self.step_all());
            for (lane, record) in records.iter_mut().zip(&self.records) {
                lane.push(*record);
            }
        }
        (down, records)
    }

    /// Per-lane reports, taking each lane's metrics *by move* (the lane
    /// continues with fresh metrics, as after [`Simulation::warmup`]).
    pub fn take_reports(&mut self) -> Vec<SimReport> {
        self.metric_lanes.fold_into(&mut self.metrics);
        let reports = (0..self.len())
            .map(|i| SimReport {
                policy: self.policies[i].name().to_string(),
                metrics: std::mem::replace(&mut self.metrics[i], Metrics::new(self.slot)),
            })
            .collect();
        // Re-seed the columns from the fresh (zeroed) metrics.
        self.metric_lanes = MetricLanes::from_metrics(&self.metrics);
        reports
    }

    /// Disassembles the batch back into standalone simulations, each
    /// carrying its full state (zone inlet synced from the SoA lanes) so it
    /// can keep stepping scalar from exactly where the batch left off.
    pub fn into_sims(mut self) -> Vec<Simulation> {
        let lanes = self.len();
        // The column-wise RNG/wander/metric state is authoritative while
        // batched; flow it back before handing the scenarios out. Same for
        // a devirtualized foresighted fleet's packed tables/RNG/campaigns.
        self.sc_lanes.sync_back(&mut self.side_channels);
        self.metric_lanes.fold_into(&mut self.metrics);
        if let Some(fl) = self.foresighted.take() {
            for i in 0..lanes {
                let policy = self.policies[i]
                    .as_any_mut()
                    .downcast_mut::<ForesightedPolicy>()
                    .expect("foresighted lanes only pack ForesightedPolicy");
                fl.sync_into_policy(i, policy);
            }
        }
        let mut sims = Vec::with_capacity(lanes);
        for i in (0..lanes).rev() {
            let mut zone = self.zone_models[i];
            zone.set_inlet(self.zones.inlet(i));
            let parts = SimParts {
                config: self.configs.pop().expect("lane"),
                trace: self.traces.pop().expect("lane"),
                zone,
                protocol: self.protocols.pop().expect("lane"),
                battery: self.batteries.pop().expect("lane"),
                side_channel: self.side_channels.pop().expect("lane"),
                policy: self.policies.pop().expect("lane"),
                slot_index: self.slot_indices[i],
                metrics: self.metrics.pop().expect("lane"),
                pending: self.pendings.pop().expect("lane"),
                outage_remaining: self.outage_remainings[i],
                prev_capping: self.prev_cappings[i],
                estimate_filter: self.filter_set[i].then(|| Power::from_watts(self.filter_w[i])),
                recorder: self.recorders.pop().expect("lane"),
            };
            sims.push(Simulation::from_parts(parts));
        }
        sims.reverse();
        sims
    }
}

/// Outcome of a sharded batch run ([`run_sharded`]).
pub struct BatchRun {
    /// The scenarios, in input order, ready to keep stepping (their metrics
    /// were moved into `reports`).
    pub sims: Vec<Simulation>,
    /// Per-scenario reports, in input order.
    pub reports: Vec<SimReport>,
    /// Per-slot count of scenarios that were down across the whole batch.
    pub down_per_slot: Vec<u32>,
}

/// Runs `sims` for `slots` slots through the batch engine, sharded across
/// the `hbm_par` thread budget.
///
/// Lanes are partitioned into contiguous shards (one per available worker,
/// probed via [`hbm_par::reserve_threads`]) and each shard advances in
/// lockstep via its own [`BatchSim`]; [`hbm_par::par_map`] returns shard
/// results in input order and the per-slot down counts merge by addition.
/// Because lanes never interact, the results are **byte-identical at any
/// thread count** — a budget of one simply runs the shards sequentially.
pub fn run_sharded(sims: Vec<Simulation>, slots: u64) -> BatchRun {
    let lanes = sims.len();
    if lanes == 0 {
        return BatchRun {
            sims,
            reports: Vec::new(),
            down_per_slot: vec![0; slots as usize],
        };
    }
    let outcomes = hbm_par::par_map(shard_lanes(sims), |shard| {
        let mut batch = BatchSim::new(shard);
        let down = batch.run(slots);
        let reports = batch.take_reports();
        (batch.into_sims(), reports, down)
    });
    let mut sims = Vec::with_capacity(lanes);
    let mut reports = Vec::with_capacity(lanes);
    let mut down_per_slot = vec![0u32; slots as usize];
    for (shard_sims, shard_reports, shard_down) in outcomes {
        sims.extend(shard_sims);
        reports.extend(shard_reports);
        for (acc, d) in down_per_slot.iter_mut().zip(shard_down) {
            *acc += d;
        }
    }
    BatchRun {
        sims,
        reports,
        down_per_slot,
    }
}

/// Outcome of a sharded recorded batch run ([`run_sharded_recorded`]).
pub struct BatchRunRecorded {
    /// The scenarios, in input order, ready to keep stepping.
    pub sims: Vec<Simulation>,
    /// Per-scenario reports, in input order.
    pub reports: Vec<SimReport>,
    /// Per-scenario, per-slot records (`records[i][t]`), in input order.
    pub records: Vec<Vec<SlotRecord>>,
    /// Per-slot count of scenarios that were down across the whole batch.
    pub down_per_slot: Vec<u32>,
}

/// [`run_sharded`] plus every lane's per-slot [`SlotRecord`]s — the batched
/// counterpart of [`Simulation::run_recorded`], with the same determinism
/// contract (byte-identical at any thread count).
pub fn run_sharded_recorded(sims: Vec<Simulation>, slots: u64) -> BatchRunRecorded {
    let lanes = sims.len();
    if lanes == 0 {
        return BatchRunRecorded {
            sims,
            reports: Vec::new(),
            records: Vec::new(),
            down_per_slot: vec![0; slots as usize],
        };
    }
    let outcomes = hbm_par::par_map(shard_lanes(sims), |shard| {
        let mut batch = BatchSim::new(shard);
        let (down, records) = batch.run_recorded(slots);
        let reports = batch.take_reports();
        (batch.into_sims(), reports, records, down)
    });
    let mut sims = Vec::with_capacity(lanes);
    let mut reports = Vec::with_capacity(lanes);
    let mut records = Vec::with_capacity(lanes);
    let mut down_per_slot = vec![0u32; slots as usize];
    for (shard_sims, shard_reports, shard_records, shard_down) in outcomes {
        sims.extend(shard_sims);
        reports.extend(shard_reports);
        records.extend(shard_records);
        for (acc, d) in down_per_slot.iter_mut().zip(shard_down) {
            *acc += d;
        }
    }
    BatchRunRecorded {
        sims,
        reports,
        records,
        down_per_slot,
    }
}

/// Partitions lanes into contiguous shards, one per worker the `hbm_par`
/// budget grants (probed, then released so `par_map` can re-borrow the same
/// threads for the actual work).
fn shard_lanes(sims: Vec<Simulation>) -> Vec<Vec<Simulation>> {
    let lanes = sims.len();
    let workers = {
        let lease = hbm_par::reserve_threads(lanes.saturating_sub(1));
        (lease.granted() + 1).min(lanes)
    };
    let quotient = lanes / workers;
    let remainder = lanes % workers;
    let mut shards: Vec<Vec<Simulation>> = Vec::with_capacity(workers);
    let mut iter = sims.into_iter();
    for s in 0..workers {
        let take = quotient + usize::from(s < remainder);
        shards.push(iter.by_ref().take(take).collect());
    }
    shards
}
