//! Batched fleet-scale simulation engine.
//!
//! [`BatchSim`] advances a whole batch of scenarios in lockstep: per-slot
//! state lives in structure-of-arrays form so the hot kernels — the zone
//! thermal sub-steps ([`ZoneLanes`]) and the side channel's Box–Muller noise
//! pass ([`box_muller_slice`]) — run as tight, SIMD-friendly inner loops over
//! the batch dimension instead of re-entering one `Simulation` at a time.
//!
//! # Determinism contract
//!
//! Lane `i` of a batch produces **bit-identical** trajectories, records, and
//! metrics to running the same [`Simulation`] alone:
//!
//! * every lane applies exactly the op-for-op IEEE-754 sequence of
//!   [`Simulation::step`] (the shared kernels are the single source of truth
//!   for the math);
//! * lanes never interact — each carries its own trace, side-channel RNG,
//!   battery, protocol, and policy;
//! * sharding ([`run_sharded`]) partitions lanes contiguously and merges
//!   order-independent per-slot down counts, so results are byte-identical
//!   at any thread count, including fully sequential.
//!
//! Telemetry: each batch slot emits one `batch.step` span (one unit per
//! lane), with the zone pass nested under `batch.zone`.

use std::sync::Arc;

use hbm_battery::Battery;
use hbm_power::EmergencyProtocol;
use hbm_sidechannel::math::box_muller_slice;
use hbm_sidechannel::{ChannelLanes, VoltageSideChannel, NORMALS_PER_ESTIMATE};
use hbm_telemetry::Recorder;
use hbm_thermal::{ZoneLanes, ZoneModel};
use hbm_units::{Duration, Energy, Power, Temperature};
use hbm_workload::PowerTrace;

use crate::sim::{emit_sample, slots_per_day_at, PendingTransition, SimParts};
use crate::{
    AttackAction, AttackPolicy, ColoConfig, Metrics, MyopicPolicy, Observation, SimReport,
    Simulation, SlotRecord, Transition,
};

/// Lane-major histogram counts for a batch whose lanes all share one
/// histogram shape (`lanes × bins` in one allocation, plus under/overflow
/// columns). The binning arithmetic replicates [`Histogram::add`] op for op
/// (`width` holds the value `Histogram::width` recomputes on every call).
struct PackedHistograms {
    lo: f64,
    hi: f64,
    width: f64,
    bins: usize,
    counts: Vec<u64>,
    underflow: Vec<u64>,
    overflow: Vec<u64>,
}

impl PackedHistograms {
    #[inline]
    fn add(&mut self, lane: usize, x: f64) {
        if x < self.lo {
            self.underflow[lane] += 1;
        } else if x >= self.hi {
            self.overflow[lane] += 1;
        } else {
            let idx = ((x - self.lo) / self.width) as usize;
            let idx = idx.min(self.bins - 1);
            self.counts[lane * self.bins + idx] += 1;
        }
    }
}

/// Per-slot metric accumulators as SoA columns, one entry per lane.
///
/// [`Metrics`] is the user-facing result type, but updating it in place
/// keeps phase 6 bouncing between each lane's multi-cache-line struct and
/// its separately allocated histogram bins. The batch instead accumulates
/// into dense columns — seeded from each lane's starting `Metrics`, so every
/// addition happens in the scalar path's exact order and the running sums
/// stay bit-identical — and flows them back with
/// [`fold_into`](MetricLanes::fold_into) when reports or scenarios leave the
/// batch. Columns with unit-typed counterparts store the raw repr
/// (kilowatt-hours for [`Energy`], Celsius degrees for
/// [`hbm_units::TemperatureDelta`]); the unit wrappers are plain `f64`
/// newtypes, so arithmetic on the raw values is the same IEEE-754 sequence.
struct MetricLanes {
    slots: Vec<u64>,
    emergency_slots: Vec<u64>,
    emergency_events: Vec<u64>,
    outage_events: Vec<u64>,
    outage_slots: Vec<u64>,
    attack_slots: Vec<u64>,
    attack_energy_kwh: Vec<f64>,
    delta_t_sum_c: Vec<f64>,
    degradation_sum: Vec<f64>,
    degradation_slots: Vec<u64>,
    attacker_metered_kwh: Vec<f64>,
    attacker_actual_kwh: Vec<f64>,
    /// Packed inlet histograms when every lane shares one shape; `None`
    /// falls back to adding into each lane's `Metrics` directly.
    hist: Option<PackedHistograms>,
}

impl MetricLanes {
    fn from_metrics(metrics: &[Metrics]) -> MetricLanes {
        let h0 = &metrics[0].inlet_histogram;
        let uniform = metrics.iter().all(|m| {
            let h = &m.inlet_histogram;
            h.lo() == h0.lo() && h.hi() == h0.hi() && h.counts().len() == h0.counts().len()
        });
        let hist = uniform.then(|| {
            let bins = h0.counts().len();
            let mut counts = Vec::with_capacity(bins * metrics.len());
            for m in metrics {
                counts.extend_from_slice(m.inlet_histogram.counts());
            }
            PackedHistograms {
                lo: h0.lo(),
                hi: h0.hi(),
                width: h0.width(),
                bins,
                counts,
                underflow: metrics
                    .iter()
                    .map(|m| m.inlet_histogram.underflow())
                    .collect(),
                overflow: metrics
                    .iter()
                    .map(|m| m.inlet_histogram.overflow())
                    .collect(),
            }
        });
        MetricLanes {
            slots: metrics.iter().map(|m| m.slots).collect(),
            emergency_slots: metrics.iter().map(|m| m.emergency_slots).collect(),
            emergency_events: metrics.iter().map(|m| m.emergency_events).collect(),
            outage_events: metrics.iter().map(|m| m.outage_events).collect(),
            outage_slots: metrics.iter().map(|m| m.outage_slots).collect(),
            attack_slots: metrics.iter().map(|m| m.attack_slots).collect(),
            attack_energy_kwh: metrics
                .iter()
                .map(|m| m.attack_energy.as_kilowatt_hours())
                .collect(),
            delta_t_sum_c: metrics.iter().map(|m| m.delta_t_sum.as_celsius()).collect(),
            degradation_sum: metrics.iter().map(|m| m.degradation_sum).collect(),
            degradation_slots: metrics.iter().map(|m| m.degradation_slots).collect(),
            attacker_metered_kwh: metrics
                .iter()
                .map(|m| m.attacker_metered_energy.as_kilowatt_hours())
                .collect(),
            attacker_actual_kwh: metrics
                .iter()
                .map(|m| m.attacker_actual_energy.as_kilowatt_hours())
                .collect(),
            hist,
        }
    }

    /// Writes the columns back into the lanes' `Metrics` (overwriting the
    /// fields the columns are authoritative for).
    fn fold_into(&self, metrics: &mut [Metrics]) {
        for (i, m) in metrics.iter_mut().enumerate() {
            m.slots = self.slots[i];
            m.emergency_slots = self.emergency_slots[i];
            m.emergency_events = self.emergency_events[i];
            m.outage_events = self.outage_events[i];
            m.outage_slots = self.outage_slots[i];
            m.attack_slots = self.attack_slots[i];
            m.attack_energy = Energy::from_kilowatt_hours(self.attack_energy_kwh[i]);
            m.delta_t_sum = hbm_units::TemperatureDelta::from_celsius(self.delta_t_sum_c[i]);
            m.degradation_sum = self.degradation_sum[i];
            m.degradation_slots = self.degradation_slots[i];
            m.attacker_metered_energy = Energy::from_kilowatt_hours(self.attacker_metered_kwh[i]);
            m.attacker_actual_energy = Energy::from_kilowatt_hours(self.attacker_actual_kwh[i]);
            if let Some(h) = &self.hist {
                m.inlet_histogram.set_counts(
                    &h.counts[i * h.bins..(i + 1) * h.bins],
                    h.underflow[i],
                    h.overflow[i],
                );
            }
        }
    }
}

/// A placeholder record for lanes that have not stepped yet.
fn blank_record() -> SlotRecord {
    SlotRecord {
        slot: 0,
        benign_demand: Power::ZERO,
        benign_actual: Power::ZERO,
        metered_total: Power::ZERO,
        actual_total: Power::ZERO,
        attack_load: Power::ZERO,
        battery_soc: 0.0,
        estimated_total: Power::ZERO,
        action: AttackAction::Standby,
        inlet: Temperature::from_celsius(0.0),
        capping: false,
        outage: false,
    }
}

fn blank_observation() -> Observation {
    Observation {
        slot: 0,
        battery_soc: 0.0,
        battery_stored: Energy::ZERO,
        estimated_total: Power::ZERO,
        inlet: Temperature::from_celsius(0.0),
        capping: false,
    }
}

/// A batch of simulations advanced in lockstep over structure-of-arrays
/// state (see the module docs for the determinism contract).
///
/// Build one from fully constructed [`Simulation`]s with [`BatchSim::new`],
/// Per-lane decision constants of an all-myopic batch, in the raw
/// representations `MyopicPolicy::decide` compares on (watts for the load
/// threshold, kilowatt-hours for the arming energy). Replaying its three
/// comparisons against these columns gives the exact same action sequence
/// as the trait-object call.
struct MyopicLanes {
    thresholds_w: Vec<f64>,
    arm_kwh: Vec<f64>,
}

/// drive it with [`step_all`](BatchSim::step_all) or
/// [`run`](BatchSim::run), then collect results with
/// [`take_reports`](BatchSim::take_reports) and hand the scenarios back with
/// [`into_sims`](BatchSim::into_sims).
pub struct BatchSim {
    // ---- Per-lane scenario components (AoS; cold per slot). ----
    configs: Vec<ColoConfig>,
    traces: Vec<Arc<PowerTrace>>,
    /// Parameter template per lane; live inlet state is in `zones`.
    zone_models: Vec<ZoneModel>,
    protocols: Vec<EmergencyProtocol>,
    batteries: Vec<Battery>,
    side_channels: Vec<VoltageSideChannel>,
    policies: Vec<Box<dyn AttackPolicy>>,
    slot_indices: Vec<u64>,
    /// Per-lane result metrics. The per-slot accumulators live in
    /// `metric_lanes` while batched and are folded back in before metrics
    /// leave the batch (`take_reports` / `into_sims`).
    metrics: Vec<Metrics>,
    metric_lanes: MetricLanes,
    pendings: Vec<Option<PendingTransition>>,
    outage_remainings: Vec<Option<Duration>>,
    prev_cappings: Vec<bool>,
    /// The attacker's EMA estimate filter, split into SoA columns (value in
    /// watts + initialized flag) so the dense path can update every lane in
    /// one packed pass; `Option<Power>` is materialized on
    /// [`into_sims`](BatchSim::into_sims).
    filter_w: Vec<f64>,
    filter_set: Vec<bool>,
    recorders: Vec<Option<Box<dyn Recorder>>>,
    /// Cached [`AttackPolicy::wants_learn`]; lanes with `false` skip the
    /// pending-transition bookkeeping entirely.
    wants_learn: Vec<bool>,
    /// Set when every lane runs a [`MyopicPolicy`]: its `decide` is three
    /// scalar comparisons on values the step loop already holds, so the
    /// whole fleet skips the observation build and the trait-object call.
    myopic: Option<MyopicLanes>,

    // ---- Per-lane config invariants, hoisted into dense arrays. ----
    // `ColoConfig` spans several cache lines per lane; the hot phases only
    // need these scalars, so precomputing them once (the same derivation
    // `Simulation::step` performs per slot — identical values) turns the
    // per-slot config traffic into sequential one-value-per-lane loads.
    benign_caps: Vec<Power>,
    benign_emergency_caps: Vec<Power>,
    attacker_caps: Vec<Power>,
    /// `attacker_caps` in raw watts, for the packed filter pass.
    attacker_caps_w: Vec<f64>,
    attacker_emergency_caps: Vec<Power>,
    ema_alphas: Vec<f64>,
    standby_powers: Vec<Power>,
    attack_loads: Vec<Power>,
    max_charge_rates: Vec<Power>,
    charge_efficiencies: Vec<f64>,
    supplies: Vec<Temperature>,
    outage_downtimes: Vec<Duration>,
    /// Per-lane wrapping cursor into the trace (`slot_index % trace_len`,
    /// maintained incrementally — no per-slot integer division). Unused (and
    /// not maintained) while `packed_traces` is `Some`.
    trace_positions: Vec<u32>,
    /// Slot-major transpose of all lanes' traces (`[pos · lanes + i]`),
    /// built when every lane shares one trace length and one starting
    /// cursor. Phase 1 then reads one contiguous lanes-wide row per slot
    /// instead of gathering from `lanes` separate heap allocations. Costs
    /// one extra copy of the trace data; `None` on ragged batches.
    packed_traces: Option<Vec<Power>>,
    /// Shared trace cursor for the `packed_traces` fast path. Lanes advance
    /// their cursors in lockstep (every lane, every slot, outage or not), so
    /// a batch that starts uniform stays uniform forever.
    uniform_pos: u32,

    // ---- SoA hot state. ----
    zones: ZoneLanes,
    /// Side-channel RNG/wander/params in column-wise form; the authoritative
    /// noise state while batched (`side_channels` holds the cold template,
    /// re-synced on [`into_sims`](BatchSim::into_sims)).
    sc_lanes: ChannelLanes,

    // ---- Shared batch invariants. ----
    slot: Duration,
    slots_per_day: u64,

    // ---- Preallocated per-slot scratch (no steady-state allocations). ----
    /// Lane indices not in outage downtime this slot.
    active: Vec<u32>,
    /// Per-lane IT heat load fed to the zone pass, watts.
    loads_w: Vec<f64>,
    /// Packed side-channel uniforms/normals, `NORMALS_PER_ESTIMATE` per
    /// active lane. Draw-major (`u[k·lanes + i]`) on the dense path,
    /// lane-major compacted over `active` on the mixed path; the Box–Muller
    /// pass is element-wise, so both layouts share the buffers.
    u1: Vec<f64>,
    u2: Vec<f64>,
    z: Vec<f64>,
    /// Benign actuals in watts (dense-path input to the packed estimate).
    benign_w: Vec<f64>,
    /// Per-lane capping flags for the slot (written by phase 1, read by the
    /// packed filter pass).
    cappings: Vec<bool>,
    /// Raw estimates in watts (dense-path output of the packed estimate).
    est_w: Vec<f64>,
    raw_estimates: Vec<Power>,
    att_metered: Vec<Power>,
    att_actual: Vec<Power>,
    observations: Vec<Observation>,
    records: Vec<SlotRecord>,
}

impl BatchSim {
    /// Builds a batch from fully constructed simulations (one lane each).
    ///
    /// # Panics
    ///
    /// Panics if `sims` is empty or the scenarios disagree on the slot
    /// length (the batch advances all lanes by one shared slot at a time).
    pub fn new(sims: Vec<Simulation>) -> BatchSim {
        assert!(!sims.is_empty(), "batch needs at least one scenario");
        let lanes = sims.len();
        let mut configs = Vec::with_capacity(lanes);
        let mut traces = Vec::with_capacity(lanes);
        let mut zone_models = Vec::with_capacity(lanes);
        let mut protocols = Vec::with_capacity(lanes);
        let mut batteries = Vec::with_capacity(lanes);
        let mut side_channels = Vec::with_capacity(lanes);
        let mut policies = Vec::with_capacity(lanes);
        let mut slot_indices = Vec::with_capacity(lanes);
        let mut metrics = Vec::with_capacity(lanes);
        let mut pendings = Vec::with_capacity(lanes);
        let mut outage_remainings = Vec::with_capacity(lanes);
        let mut prev_cappings = Vec::with_capacity(lanes);
        let mut filter_w = Vec::with_capacity(lanes);
        let mut filter_set = Vec::with_capacity(lanes);
        let mut recorders = Vec::with_capacity(lanes);
        for sim in sims {
            let parts = sim.into_parts();
            configs.push(parts.config);
            traces.push(parts.trace);
            zone_models.push(parts.zone);
            protocols.push(parts.protocol);
            batteries.push(parts.battery);
            side_channels.push(parts.side_channel);
            policies.push(parts.policy);
            slot_indices.push(parts.slot_index);
            metrics.push(parts.metrics);
            pendings.push(parts.pending);
            outage_remainings.push(parts.outage_remaining);
            prev_cappings.push(parts.prev_capping);
            filter_w.push(parts.estimate_filter.map_or(0.0, |p| p.as_watts()));
            filter_set.push(parts.estimate_filter.is_some());
            recorders.push(parts.recorder);
        }
        let slot = configs[0].slot;
        assert!(
            configs.iter().all(|c| c.slot == slot),
            "all lanes must share the slot length"
        );
        let metric_lanes = MetricLanes::from_metrics(&metrics);
        let zones = ZoneLanes::from_models(&zone_models);
        let sc_lanes = ChannelLanes::from_channels(&side_channels);
        let wants_learn = policies.iter().map(|p| p.wants_learn()).collect();
        let myopic = policies
            .iter()
            .map(|p| p.as_any().downcast_ref::<MyopicPolicy>())
            .collect::<Option<Vec<_>>>()
            .map(|ps| MyopicLanes {
                thresholds_w: ps.iter().map(|p| p.threshold().as_watts()).collect(),
                arm_kwh: ps
                    .iter()
                    .map(|p| p.arm_energy().as_kilowatt_hours())
                    .collect(),
            });
        let benign_caps = configs.iter().map(|c| c.benign_capacity()).collect();
        let benign_emergency_caps = configs.iter().map(|c| c.benign_emergency_cap()).collect();
        let attacker_caps: Vec<Power> = configs.iter().map(|c| c.attacker_capacity).collect();
        let attacker_caps_w = attacker_caps.iter().map(|p| p.as_watts()).collect();
        let attacker_emergency_caps = configs.iter().map(|c| c.attacker_emergency_cap()).collect();
        let ema_alphas = configs.iter().map(|c| c.estimate_ema_alpha).collect();
        let standby_powers = configs.iter().map(|c| c.standby_power).collect();
        let attack_loads = configs.iter().map(|c| c.attack_load).collect();
        let max_charge_rates = configs.iter().map(|c| c.battery.max_charge_rate).collect();
        let charge_efficiencies = configs
            .iter()
            .map(|c| c.battery.charge_efficiency)
            .collect();
        let supplies = configs.iter().map(|c| c.cooling.supply).collect();
        let outage_downtimes = configs.iter().map(|c| c.outage_downtime).collect();
        let trace_positions: Vec<u32> = slot_indices
            .iter()
            .zip(&traces)
            .map(|(&k, t)| (k % t.len() as u64) as u32)
            .collect();
        let trace_len = traces[0].len();
        let uniform = traces.iter().all(|t| t.len() == trace_len)
            && trace_positions.iter().all(|&p| p == trace_positions[0]);
        let packed_traces = if uniform {
            let mut packed = Vec::with_capacity(trace_len * lanes);
            for pos in 0..trace_len {
                packed.extend(traces.iter().map(|t| t.samples()[pos]));
            }
            Some(packed)
        } else {
            None
        };
        let uniform_pos = trace_positions[0];
        BatchSim {
            configs,
            traces,
            zone_models,
            protocols,
            batteries,
            side_channels,
            policies,
            slot_indices,
            metrics,
            metric_lanes,
            pendings,
            outage_remainings,
            prev_cappings,
            filter_w,
            filter_set,
            recorders,
            wants_learn,
            myopic,
            benign_caps,
            benign_emergency_caps,
            attacker_caps,
            attacker_caps_w,
            attacker_emergency_caps,
            ema_alphas,
            standby_powers,
            attack_loads,
            max_charge_rates,
            charge_efficiencies,
            supplies,
            outage_downtimes,
            trace_positions,
            packed_traces,
            uniform_pos,
            zones,
            sc_lanes,
            slot,
            slots_per_day: slots_per_day_at(slot),
            active: Vec::with_capacity(lanes),
            loads_w: vec![0.0; lanes],
            u1: vec![0.0; lanes * NORMALS_PER_ESTIMATE],
            u2: vec![0.0; lanes * NORMALS_PER_ESTIMATE],
            z: vec![0.0; lanes * NORMALS_PER_ESTIMATE],
            benign_w: vec![0.0; lanes],
            cappings: vec![false; lanes],
            est_w: vec![0.0; lanes],
            raw_estimates: vec![Power::ZERO; lanes],
            att_metered: vec![Power::ZERO; lanes],
            att_actual: vec![Power::ZERO; lanes],
            observations: vec![blank_observation(); lanes],
            records: vec![blank_record(); lanes],
        }
    }

    /// Number of lanes (scenarios) in the batch.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the batch is empty (never true for constructed batches).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The shared slot length.
    pub fn slot(&self) -> Duration {
        self.slot
    }

    /// The last slot's records, one per lane ([`blank`](SlotRecord) before
    /// the first [`step_all`](BatchSim::step_all)).
    pub fn records(&self) -> &[SlotRecord] {
        &self.records
    }

    /// Advances every lane by one slot and returns the number of lanes that
    /// spent the slot in outage downtime.
    ///
    /// Phase structure (matching [`Simulation::step`] per lane, op for op):
    ///
    /// 1. slot bookkeeping and benign tenants (scalar sweep);
    /// 2. side-channel uniform draws, compacted over non-outage lanes;
    /// 3. one packed Box–Muller pass over all lanes' normals (vectorized);
    /// 4. estimate → learn → decide → act (virtual dispatch per lane);
    /// 5. zone thermal pass over the whole batch ([`ZoneLanes::step_all`]);
    /// 6. protocol, metrics, and record finalization (scalar sweep).
    pub fn step_all(&mut self) -> u32 {
        let started = hbm_telemetry::timing::start();
        let slot = self.slot;
        let lanes = self.len();
        self.active.clear();
        // ---- Phase 1: slot bookkeeping + benign tenants. ----
        // Take the transposed traces out of `self` so the demand row can be
        // borrowed across the (mutating) lane loop; restored right after.
        let packed_traces = self.packed_traces.take();
        let row: Option<&[Power]> = packed_traces.as_deref().map(|packed| {
            let at = self.uniform_pos as usize * lanes;
            self.uniform_pos += 1;
            if self.uniform_pos as usize * lanes == packed.len() {
                self.uniform_pos = 0;
            }
            &packed[at..at + lanes]
        });
        for i in 0..lanes {
            let k = self.slot_indices[i];
            self.slot_indices[i] += 1;
            // One contiguous lanes-wide row on the uniform fast path; the
            // ragged fallback gathers from each lane's own trace (and is the
            // only consumer of the per-lane cursors).
            let benign_demand = match row {
                Some(r) => r[i],
                None => {
                    let pos = self.trace_positions[i] as usize;
                    self.trace_positions[i] += 1;
                    if self.trace_positions[i] as usize == self.traces[i].len() {
                        self.trace_positions[i] = 0;
                    }
                    self.traces[i].samples()[pos]
                }
            };
            if self.outage_remainings[i].is_some() {
                // Outage downtime: everything is off; the zone pass cools
                // the lane at zero load and phase 6 finishes the books.
                self.loads_w[i] = 0.0;
                self.benign_w[i] = 0.0;
                self.raw_estimates[i] = Power::ZERO;
                self.records[i] = SlotRecord {
                    slot: k,
                    benign_demand: Power::ZERO,
                    benign_actual: Power::ZERO,
                    metered_total: Power::ZERO,
                    actual_total: Power::ZERO,
                    attack_load: Power::ZERO,
                    battery_soc: self.batteries[i].state_of_charge(),
                    estimated_total: Power::ZERO,
                    action: AttackAction::Standby,
                    inlet: Temperature::from_celsius(0.0), // phase 6
                    capping: false,
                    outage: true,
                };
            } else {
                self.active.push(i as u32);
                // `prev_cappings` is invariantly the protocol's capping
                // state as of the end of the previous slot (phase 6 and the
                // outage path both maintain it), so the protocol struct
                // itself stays untouched until phase 6.
                let capping = self.prev_cappings[i];
                debug_assert_eq!(capping, self.protocols[i].state().is_capping());
                let benign_limit = if capping {
                    self.benign_emergency_caps[i]
                } else {
                    self.benign_caps[i]
                };
                let benign_actual = benign_demand.min(benign_limit);
                // Dense columns feeding the packed estimate + filter passes.
                self.benign_w[i] = benign_actual.as_watts();
                self.cappings[i] = capping;
                let r = &mut self.records[i];
                r.slot = k;
                r.benign_demand = benign_demand;
                r.benign_actual = benign_actual;
                r.capping = capping;
                r.outage = false;
            }
        }
        self.packed_traces = packed_traces;

        // ---- Phase 2: side-channel uniforms. ----
        // Hoisting the draws ahead of the estimate is value-identical: the
        // uniforms are input-independent and drawn in the same RNG order.
        let n_active = self.active.len();
        let dense = n_active == lanes;
        if dense {
            // Every lane participates: one packed xoshiro sweep over the
            // whole batch (draw-major layout).
            self.sc_lanes.draw_all(&mut self.u1, &mut self.u2);
        } else {
            let mut tmp = [0.0; 2 * NORMALS_PER_ESTIMATE];
            for j in 0..n_active {
                let i = self.active[j] as usize;
                self.sc_lanes.draw_uniforms_lane(i, &mut tmp);
                let at = j * NORMALS_PER_ESTIMATE;
                self.u1[at..at + NORMALS_PER_ESTIMATE]
                    .copy_from_slice(&tmp[..NORMALS_PER_ESTIMATE]);
                self.u2[at..at + NORMALS_PER_ESTIMATE]
                    .copy_from_slice(&tmp[NORMALS_PER_ESTIMATE..]);
            }
        }

        // ---- Phase 3: packed Box–Muller across the whole batch. ----
        let packed = n_active * NORMALS_PER_ESTIMATE;
        box_muller_slice(
            &self.u1[..packed],
            &self.u2[..packed],
            &mut self.z[..packed],
        );

        // ---- Phase 4: estimate, learn, decide, act. ----
        if dense {
            // Packed measurement-model pass over all lanes (inputs were laid
            // down column-wise by phase 1), then a packed raw-estimate + EMA
            // filter pass. Per lane these are the exact f64 sequences of the
            // scalar path below — `Power` arithmetic is plain arithmetic on
            // watts — just strip-mined over the batch.
            self.sc_lanes
                .estimate_all(&self.benign_w, &self.z, &mut self.est_w);
            for i in 0..lanes {
                let raw_estimate = self.est_w[i] + self.attacker_caps_w[i];
                let alpha = self.ema_alphas[i];
                let filtered = if !self.filter_set[i] {
                    raw_estimate
                } else if self.cappings[i] {
                    // Capped slots carry no information about the underlying
                    // demand; freeze the filter (see Simulation::step_inner).
                    self.filter_w[i]
                } else {
                    self.filter_w[i] * (1.0 - alpha) + raw_estimate * alpha
                };
                self.filter_w[i] = filtered;
                self.filter_set[i] = true;
                self.est_w[i] = raw_estimate;
            }
        }
        for j in 0..n_active {
            let i = self.active[j] as usize;
            let k = self.records[i].slot;
            let benign_actual = self.records[i].benign_actual;
            let capping = self.records[i].capping;

            let (raw_estimate, estimated_total) = if dense {
                (
                    Power::from_watts(self.est_w[i]),
                    Power::from_watts(self.filter_w[i]),
                )
            } else {
                let at = j * NORMALS_PER_ESTIMATE;
                let mut z4 = [0.0; NORMALS_PER_ESTIMATE];
                z4.copy_from_slice(&self.z[at..at + NORMALS_PER_ESTIMATE]);
                let raw = self.sc_lanes.estimate_lane(i, benign_actual, &z4);
                let raw_estimate = raw + self.attacker_caps[i];
                let alpha = self.ema_alphas[i];
                let estimated_total = if !self.filter_set[i] {
                    raw_estimate
                } else if capping {
                    Power::from_watts(self.filter_w[i])
                } else {
                    Power::from_watts(self.filter_w[i]) * (1.0 - alpha) + raw_estimate * alpha
                };
                self.filter_w[i] = estimated_total.as_watts();
                self.filter_set[i] = true;
                (raw_estimate, estimated_total)
            };
            let action = if let Some(my) = &self.myopic {
                // All-myopic fleet: replay `MyopicPolicy::decide`'s three
                // comparisons directly (same order, same raw-unit
                // representations), skipping the observation build and the
                // indirect call. Myopic never learns, so the learn path
                // below is dead for every lane of such a batch.
                if capping {
                    AttackAction::Standby
                } else if estimated_total.as_watts() >= my.thresholds_w[i]
                    && self.batteries[i].stored().as_kilowatt_hours() >= my.arm_kwh[i]
                {
                    AttackAction::Attack
                } else if self.batteries[i].state_of_charge() < 1.0 {
                    AttackAction::Charge
                } else {
                    AttackAction::Standby
                }
            } else {
                let observation = Observation {
                    slot: k,
                    battery_soc: self.batteries[i].state_of_charge(),
                    battery_stored: self.batteries[i].stored(),
                    estimated_total,
                    inlet: self.zones.inlet(i),
                    capping,
                };

                // Non-learning lanes never have a pending transition and
                // never read `observations` back (phase 6 skips them too),
                // so the whole learn path — including the 100-byte
                // `pendings` sweep — collapses to this one flag test.
                if self.wants_learn[i] {
                    if let Some(p) = self.pendings[i].take() {
                        let transition = Transition {
                            observation: p.observation,
                            action: p.action,
                            inlet: p.inlet,
                            next_battery_soc: p.next_battery_soc,
                            next_battery_stored: p.next_battery_stored,
                            next_estimated_total: estimated_total,
                            next_capping: capping,
                            day: p.observation.slot / self.slots_per_day,
                        };
                        self.policies[i].learn(&transition);
                    }
                    self.observations[i] = observation;
                }

                self.policies[i].decide(&observation)
            };
            let attacker_metered_limit = if capping {
                self.attacker_emergency_caps[i]
            } else {
                self.attacker_caps[i]
            };
            let (attacker_metered, attacker_actual, battery_attack) = match action {
                AttackAction::Attack => {
                    let metered = attacker_metered_limit;
                    let delivered = self.batteries[i].discharge(self.attack_loads[i], slot);
                    (metered, metered + delivered, delivered)
                }
                AttackAction::Charge => {
                    let headroom =
                        (attacker_metered_limit - self.standby_powers[i]).positive_part();
                    let drawn =
                        self.batteries[i].charge(self.max_charge_rates[i].min(headroom), slot);
                    let standby = self.standby_powers[i].min(attacker_metered_limit);
                    let loss = drawn * (1.0 - self.charge_efficiencies[i]);
                    (standby + drawn, standby + loss, Power::ZERO)
                }
                AttackAction::Standby => {
                    let standby = self.standby_powers[i].min(attacker_metered_limit);
                    (standby, standby, Power::ZERO)
                }
            };

            let metered_total = benign_actual + attacker_metered;
            let actual_total = benign_actual + attacker_actual;
            self.loads_w[i] = actual_total.as_watts();
            self.att_metered[i] = attacker_metered;
            self.att_actual[i] = attacker_actual;
            self.raw_estimates[i] = raw_estimate;
            let r = &mut self.records[i];
            r.metered_total = metered_total;
            r.actual_total = actual_total;
            r.attack_load = battery_attack;
            r.battery_soc = self.batteries[i].state_of_charge();
            r.estimated_total = estimated_total;
            r.action = action;
        }

        // ---- Phase 5: zone thermal pass over the whole batch. ----
        self.zones.step_all(&self.loads_w, slot);

        // ---- Phase 6: protocol, metrics, record finalization. ----
        let mut down: u32 = 0;
        for i in 0..lanes {
            let inlet = self.zones.inlet(i);
            let inlet_c = inlet.as_celsius();
            self.records[i].inlet = inlet;
            self.metric_lanes.slots[i] += 1;
            if self.records[i].outage {
                down += 1;
                self.metric_lanes.outage_slots[i] += 1;
                match &mut self.metric_lanes.hist {
                    Some(h) => h.add(i, inlet_c),
                    None => self.metrics[i].inlet_histogram.add(inlet_c),
                }
                let left = self.outage_remainings[i].expect("outage lane") - slot;
                if left > Duration::ZERO {
                    self.outage_remainings[i] = Some(left);
                } else {
                    self.outage_remainings[i] = None;
                    self.protocols[i].reset();
                }
                self.pendings[i] = None; // the attacker's episode is over
                self.prev_cappings[i] = false;
            } else {
                let capping = self.records[i].capping;
                let next_state = self.protocols[i].step(inlet, slot);
                if next_state.is_outage() {
                    self.metric_lanes.outage_events[i] += 1;
                    self.outage_remainings[i] = Some(self.outage_downtimes[i]);
                }
                let capping_next = next_state.is_capping();
                if capping_next && !self.prev_cappings[i] {
                    self.metric_lanes.emergency_events[i] += 1;
                }
                self.prev_cappings[i] = capping_next;

                if capping {
                    self.metric_lanes.emergency_slots[i] += 1;
                    let u_inst =
                        (self.records[i].benign_demand / self.benign_caps[i]).clamp(0.0, 1.0);
                    let load_frac = self.configs[i].latency.rated_load() * u_inst;
                    let degradation = self.configs[i]
                        .latency
                        .degradation(self.configs[i].emergency_cap_fraction(), load_frac);
                    self.metric_lanes.degradation_sum[i] += degradation;
                    self.metric_lanes.degradation_slots[i] += 1;
                }
                let battery_attack = self.records[i].attack_load;
                if battery_attack > Power::ZERO {
                    self.metric_lanes.attack_slots[i] += 1;
                    self.metric_lanes.attack_energy_kwh[i] +=
                        (battery_attack * slot).as_kilowatt_hours();
                }
                self.metric_lanes.delta_t_sum_c[i] +=
                    (inlet - self.supplies[i]).positive_part().as_celsius();
                match &mut self.metric_lanes.hist {
                    Some(h) => h.add(i, inlet_c),
                    None => self.metrics[i].inlet_histogram.add(inlet_c),
                }
                self.metric_lanes.attacker_metered_kwh[i] +=
                    (self.att_metered[i] * slot).as_kilowatt_hours();
                self.metric_lanes.attacker_actual_kwh[i] +=
                    (self.att_actual[i] * slot).as_kilowatt_hours();

                if self.wants_learn[i] {
                    self.pendings[i] = Some(PendingTransition {
                        observation: self.observations[i],
                        action: self.records[i].action,
                        inlet,
                        next_battery_soc: self.batteries[i].state_of_charge(),
                        next_battery_stored: self.batteries[i].stored(),
                    });
                }
            }
            if let Some(rec) = self.recorders[i].as_mut() {
                emit_sample(rec.as_mut(), &self.records[i], self.raw_estimates[i]);
            }
        }
        hbm_telemetry::timing::record_span_units("batch.step", started, lanes as u64);
        down
    }

    /// Runs `slots` slots and returns the per-slot count of lanes that were
    /// down (in outage downtime) — the fleet availability signal.
    pub fn run(&mut self, slots: u64) -> Vec<u32> {
        let mut down = Vec::with_capacity(slots as usize);
        for _ in 0..slots {
            down.push(self.step_all());
        }
        down
    }

    /// Per-lane reports, taking each lane's metrics *by move* (the lane
    /// continues with fresh metrics, as after [`Simulation::warmup`]).
    pub fn take_reports(&mut self) -> Vec<SimReport> {
        self.metric_lanes.fold_into(&mut self.metrics);
        let reports = (0..self.len())
            .map(|i| SimReport {
                policy: self.policies[i].name().to_string(),
                metrics: std::mem::replace(&mut self.metrics[i], Metrics::new(self.slot)),
            })
            .collect();
        // Re-seed the columns from the fresh (zeroed) metrics.
        self.metric_lanes = MetricLanes::from_metrics(&self.metrics);
        reports
    }

    /// Disassembles the batch back into standalone simulations, each
    /// carrying its full state (zone inlet synced from the SoA lanes) so it
    /// can keep stepping scalar from exactly where the batch left off.
    pub fn into_sims(mut self) -> Vec<Simulation> {
        let lanes = self.len();
        // The column-wise RNG/wander/metric state is authoritative while
        // batched; flow it back before handing the scenarios out.
        self.sc_lanes.sync_back(&mut self.side_channels);
        self.metric_lanes.fold_into(&mut self.metrics);
        let mut sims = Vec::with_capacity(lanes);
        for i in (0..lanes).rev() {
            let mut zone = self.zone_models[i];
            zone.set_inlet(self.zones.inlet(i));
            let parts = SimParts {
                config: self.configs.pop().expect("lane"),
                trace: self.traces.pop().expect("lane"),
                zone,
                protocol: self.protocols.pop().expect("lane"),
                battery: self.batteries.pop().expect("lane"),
                side_channel: self.side_channels.pop().expect("lane"),
                policy: self.policies.pop().expect("lane"),
                slot_index: self.slot_indices[i],
                metrics: self.metrics.pop().expect("lane"),
                pending: self.pendings.pop().expect("lane"),
                outage_remaining: self.outage_remainings[i],
                prev_capping: self.prev_cappings[i],
                estimate_filter: self.filter_set[i].then(|| Power::from_watts(self.filter_w[i])),
                recorder: self.recorders.pop().expect("lane"),
            };
            sims.push(Simulation::from_parts(parts));
        }
        sims.reverse();
        sims
    }
}

/// Outcome of a sharded batch run ([`run_sharded`]).
pub struct BatchRun {
    /// The scenarios, in input order, ready to keep stepping (their metrics
    /// were moved into `reports`).
    pub sims: Vec<Simulation>,
    /// Per-scenario reports, in input order.
    pub reports: Vec<SimReport>,
    /// Per-slot count of scenarios that were down across the whole batch.
    pub down_per_slot: Vec<u32>,
}

/// Runs `sims` for `slots` slots through the batch engine, sharded across
/// the `hbm_par` thread budget.
///
/// Lanes are partitioned into contiguous shards (one per available worker,
/// probed via [`hbm_par::reserve_threads`]) and each shard advances in
/// lockstep via its own [`BatchSim`]; [`hbm_par::par_map`] returns shard
/// results in input order and the per-slot down counts merge by addition.
/// Because lanes never interact, the results are **byte-identical at any
/// thread count** — a budget of one simply runs the shards sequentially.
pub fn run_sharded(sims: Vec<Simulation>, slots: u64) -> BatchRun {
    let lanes = sims.len();
    if lanes == 0 {
        return BatchRun {
            sims,
            reports: Vec::new(),
            down_per_slot: vec![0; slots as usize],
        };
    }
    // Probe the budget to size the shards, then release it so par_map can
    // re-borrow the same threads for the actual work.
    let workers = {
        let lease = hbm_par::reserve_threads(lanes.saturating_sub(1));
        (lease.granted() + 1).min(lanes)
    };
    let quotient = lanes / workers;
    let remainder = lanes % workers;
    let mut shards: Vec<Vec<Simulation>> = Vec::with_capacity(workers);
    let mut iter = sims.into_iter();
    for s in 0..workers {
        let take = quotient + usize::from(s < remainder);
        shards.push(iter.by_ref().take(take).collect());
    }
    let outcomes = hbm_par::par_map(shards, |shard| {
        let mut batch = BatchSim::new(shard);
        let down = batch.run(slots);
        let reports = batch.take_reports();
        (batch.into_sims(), reports, down)
    });
    let mut sims = Vec::with_capacity(lanes);
    let mut reports = Vec::with_capacity(lanes);
    let mut down_per_slot = vec![0u32; slots as usize];
    for (shard_sims, shard_reports, shard_down) in outcomes {
        sims.extend(shard_sims);
        reports.extend(shard_reports);
        for (acc, d) in down_per_slot.iter_mut().zip(shard_down) {
            *acc += d;
        }
    }
    BatchRun {
        sims,
        reports,
        down_per_slot,
    }
}
