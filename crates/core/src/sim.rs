//! The slotted colocation simulator.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use hbm_battery::Battery;
use hbm_power::EmergencyProtocol;
use hbm_sidechannel::VoltageSideChannel;
use hbm_telemetry::{ChannelValue, Recorder, Sample};
use hbm_thermal::ZoneModel;
use hbm_units::{Duration, Energy, Power, Temperature};
use hbm_workload::{generate, PowerTrace};

use crate::{AttackAction, AttackPolicy, ColoConfig, Metrics, Observation, Transition};

/// One slot of recorded simulator state (drives the snapshot figures
/// 8, 9, and 13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// Slot index.
    pub slot: u64,
    /// Benign tenants' desired aggregate power.
    pub benign_demand: Power,
    /// Benign tenants' actual (possibly capped) power.
    pub benign_actual: Power,
    /// Total power the operator's meters registered.
    pub metered_total: Power,
    /// Total actual heat-producing power.
    pub actual_total: Power,
    /// Battery-fed attack load this slot (zero unless attacking).
    pub attack_load: Power,
    /// Attacker battery state of charge at the end of the slot.
    pub battery_soc: f64,
    /// The attacker's side-channel estimate (incl. its own subscription).
    pub estimated_total: Power,
    /// Action the attacker took.
    pub action: AttackAction,
    /// Server inlet temperature at the end of the slot.
    pub inlet: Temperature,
    /// Whether capping was enforced during this slot.
    pub capping: bool,
    /// Whether the colocation was down during this slot.
    pub outage: bool,
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Name of the attack policy that ran.
    pub policy: String,
    /// Aggregated metrics.
    pub metrics: Metrics,
}

/// Everything not yet known when the policy acted; completed (and fed to
/// [`AttackPolicy::learn`]) at the start of the next slot, when the next
/// side-channel estimate exists.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PendingTransition {
    pub(crate) observation: Observation,
    pub(crate) action: AttackAction,
    pub(crate) inlet: Temperature,
    pub(crate) next_battery_soc: f64,
    pub(crate) next_battery_stored: Energy,
}

/// A [`Simulation`] decomposed into its owned components, so the batch
/// engine can host the same state in its structure-of-arrays layout and
/// hand it back unchanged. Field-for-field mirror of [`Simulation`].
pub(crate) struct SimParts {
    pub(crate) config: ColoConfig,
    pub(crate) trace: Arc<PowerTrace>,
    pub(crate) zone: ZoneModel,
    pub(crate) protocol: EmergencyProtocol,
    pub(crate) battery: Battery,
    pub(crate) side_channel: VoltageSideChannel,
    pub(crate) policy: Box<dyn AttackPolicy>,
    pub(crate) slot_index: u64,
    pub(crate) metrics: Metrics,
    pub(crate) pending: Option<PendingTransition>,
    pub(crate) outage_remaining: Option<Duration>,
    pub(crate) prev_capping: bool,
    pub(crate) estimate_filter: Option<Power>,
    pub(crate) recorder: Option<Box<dyn Recorder>>,
}

/// Slots per simulated day at a given slot length (shared by the scalar
/// and batch engines so both bucket transitions into the same days).
pub(crate) fn slots_per_day_at(slot: Duration) -> u64 {
    (Duration::from_days(1.0) / slot).round().max(1.0) as u64
}

/// Emits one telemetry sample for a finished slot. Channel names mirror
/// the figure CSV columns (`docs/TELEMETRY.md`). Shared by
/// [`Simulation::step`] and the batch engine so traced slots look
/// identical regardless of which engine produced them.
pub(crate) fn emit_sample(rec: &mut dyn Recorder, r: &SlotRecord, raw_estimate: Power) {
    let action = match r.action {
        AttackAction::Attack => "attack",
        AttackAction::Charge => "charge",
        AttackAction::Standby => "standby",
    };
    let channels: [(&'static str, ChannelValue); 12] = [
        ("benign_kw", r.benign_demand.as_kilowatts().into()),
        ("benign_actual_kw", r.benign_actual.as_kilowatts().into()),
        ("metered_kw", r.metered_total.as_kilowatts().into()),
        ("actual_kw", r.actual_total.as_kilowatts().into()),
        ("attack_kw", r.attack_load.as_kilowatts().into()),
        ("soc", r.battery_soc.into()),
        ("est_kw", r.estimated_total.as_kilowatts().into()),
        ("raw_est_kw", raw_estimate.as_kilowatts().into()),
        ("inlet_c", r.inlet.as_celsius().into()),
        ("capping", r.capping.into()),
        ("outage", r.outage.into()),
        ("action", ChannelValue::Str(action)),
    ];
    rec.record(&Sample {
        step: r.slot,
        channels: &channels,
    });
}

/// The edge-colocation simulator (see the crate docs for the slot
/// sequence).
///
/// Fields are `pub(crate)` so the checkpoint module (`crate::state`) can
/// serialize and restore the dynamic state bit-exactly.
pub struct Simulation {
    pub(crate) config: ColoConfig,
    /// The benign workload trace. Behind an [`Arc`] because it is the one
    /// large piece of *static* state: [`Simulation::fork`] shares it
    /// instead of copying megabytes of samples per branch.
    pub(crate) trace: Arc<PowerTrace>,
    pub(crate) zone: ZoneModel,
    pub(crate) protocol: EmergencyProtocol,
    pub(crate) battery: Battery,
    pub(crate) side_channel: VoltageSideChannel,
    pub(crate) policy: Box<dyn AttackPolicy>,
    pub(crate) slot_index: u64,
    pub(crate) metrics: Metrics,
    pub(crate) pending: Option<PendingTransition>,
    pub(crate) outage_remaining: Option<Duration>,
    pub(crate) prev_capping: bool,
    /// EMA state of the attacker's filtered side-channel estimate.
    pub(crate) estimate_filter: Option<Power>,
    /// Optional per-slot telemetry sink. `None` costs one branch per slot;
    /// recording itself never touches any simulation RNG, so traced and
    /// untraced runs produce identical trajectories.
    pub(crate) recorder: Option<Box<dyn Recorder>>,
}

impl Simulation {
    /// Builds a simulator from a configuration, an attack policy, and a
    /// seed (which controls the workload trace and the side channel; the
    /// policy carries its own RNG).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`ColoConfig::validate`].
    pub fn new(config: ColoConfig, policy: Box<dyn AttackPolicy>, seed: u64) -> Self {
        let mut trace_config = config.trace;
        trace_config.seed = trace_config.seed.wrapping_add(seed);
        let trace = Arc::new(generate(&trace_config));
        Self::with_trace(config, policy, seed, trace)
    }

    /// Like [`Simulation::new`], but with an already-generated workload
    /// trace instead of synthesizing one. The caller is responsible for
    /// passing exactly the trace [`Simulation::new`] would generate for
    /// this `config`/`seed` pair — [`crate::Scenario::build_sim_sharing_trace`]
    /// checks that before sharing a donor's `Arc`.
    pub(crate) fn with_trace(
        config: ColoConfig,
        policy: Box<dyn AttackPolicy>,
        seed: u64,
        trace: Arc<PowerTrace>,
    ) -> Self {
        config.validate().expect("invalid colocation config");
        let zone = ZoneModel::new(
            config.cooling,
            config.zone_heat_capacity_j_per_k,
            config.zone_pulldown_w_per_k,
        );
        let protocol = config.protocol.clone();
        let battery = Battery::full(config.battery);
        let side_channel = VoltageSideChannel::new(config.side_channel, seed.wrapping_mul(31) + 7);
        let slot = config.slot;
        Simulation {
            config,
            trace,
            zone,
            protocol,
            battery,
            side_channel,
            policy,
            slot_index: 0,
            metrics: Metrics::new(slot),
            pending: None,
            outage_remaining: None,
            prev_capping: false,
            estimate_filter: None,
            recorder: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ColoConfig {
        &self.config
    }

    /// The benign workload trace in use.
    pub fn trace(&self) -> &PowerTrace {
        &self.trace
    }

    /// A shared handle to the workload trace (traces are immutable, so
    /// forked and rebuilt simulators can alias one allocation).
    pub(crate) fn trace_arc(&self) -> Arc<PowerTrace> {
        Arc::clone(&self.trace)
    }

    /// Current inlet temperature.
    pub fn inlet(&self) -> Temperature {
        self.zone.inlet()
    }

    /// Current attacker battery state of charge.
    pub fn battery_soc(&self) -> f64 {
        self.battery.state_of_charge()
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The attack policy (downcast via [`AttackPolicy::as_any`] to inspect
    /// a concrete type, e.g. the learnt Foresighted policy for Fig. 10).
    pub fn policy(&self) -> &dyn AttackPolicy {
        self.policy.as_ref()
    }

    /// Mutable access to the attack policy.
    pub fn policy_mut(&mut self) -> &mut dyn AttackPolicy {
        self.policy.as_mut()
    }

    /// Attaches a telemetry recorder; every subsequent slot emits one
    /// [`Sample`] (see `docs/TELEMETRY.md` for the channel schema).
    ///
    /// Recording observes state the simulator computes anyway and never
    /// touches any RNG, so attaching a recorder cannot perturb the run.
    /// Attach after [`Simulation::warmup`] to trace only measured slots.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Detaches and returns the recorder, flushing it first.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        if let Some(rec) = self.recorder.as_mut() {
            rec.flush();
        }
        self.recorder.take()
    }

    /// Runs `slots` slots and returns the accumulated report.
    pub fn run(&mut self, slots: u64) -> SimReport {
        for _ in 0..slots {
            self.step();
        }
        self.report()
    }

    /// Runs `slots` slots, recording every slot (for snapshot figures).
    pub fn run_recorded(&mut self, slots: u64) -> (SimReport, Vec<SlotRecord>) {
        let mut records = Vec::with_capacity(slots as usize);
        for _ in 0..slots {
            records.push(self.step());
        }
        (self.report(), records)
    }

    /// Runs `slots` slots for learning warm-up, then discards the metrics
    /// (the paper initializes its Q tables offline before the measured
    /// year).
    pub fn warmup(&mut self, slots: u64) {
        for _ in 0..slots {
            self.step();
        }
        self.metrics = Metrics::new(self.config.slot);
    }

    /// The report for everything simulated so far.
    pub fn report(&self) -> SimReport {
        SimReport {
            policy: self.policy.name().to_string(),
            metrics: self.metrics.clone(),
        }
    }

    /// Simulates one slot and returns its record.
    pub fn step(&mut self) -> SlotRecord {
        let started = hbm_telemetry::timing::start();
        let (record, raw_estimate) = self.step_inner();
        hbm_telemetry::timing::record_span("sim.step", started);
        if self.recorder.is_some() {
            self.record_slot(&record, raw_estimate);
        }
        record
    }

    /// Emits one telemetry sample for a finished slot (see [`emit_sample`]).
    fn record_slot(&mut self, r: &SlotRecord, raw_estimate: Power) {
        if let Some(rec) = self.recorder.as_mut() {
            emit_sample(rec.as_mut(), r, raw_estimate);
        }
    }

    /// The slot body; returns the record plus the unfiltered side-channel
    /// estimate (zero during outages, when nothing can be sensed).
    fn step_inner(&mut self) -> (SlotRecord, Power) {
        let slot = self.config.slot;
        let k = self.slot_index;
        self.slot_index += 1;
        self.metrics.slots += 1;

        // ------ Outage downtime: everything is off. ------
        if let Some(remaining) = self.outage_remaining {
            let inlet = self.zone.step(Power::ZERO, slot);
            self.metrics.outage_slots += 1;
            self.metrics.inlet_histogram.add(inlet.as_celsius());
            let left = remaining - slot;
            if left > Duration::ZERO {
                self.outage_remaining = Some(left);
            } else {
                self.outage_remaining = None;
                self.protocol.reset();
            }
            self.pending = None; // the attacker's episode is over
            self.prev_capping = false;
            return (
                SlotRecord {
                    slot: k,
                    benign_demand: Power::ZERO,
                    benign_actual: Power::ZERO,
                    metered_total: Power::ZERO,
                    actual_total: Power::ZERO,
                    attack_load: Power::ZERO,
                    battery_soc: self.battery.state_of_charge(),
                    estimated_total: Power::ZERO,
                    action: AttackAction::Standby,
                    inlet,
                    capping: false,
                    outage: true,
                },
                Power::ZERO,
            );
        }

        let capping = self.protocol.state().is_capping();

        // ------ Benign tenants. ------
        let benign_demand = self.trace.get(k as usize);
        let benign_limit = if capping {
            self.config.benign_emergency_cap()
        } else {
            self.config.benign_capacity()
        };
        let benign_actual = benign_demand.min(benign_limit);

        // ------ Attacker: observe, decide, act. ------
        let raw_estimate =
            self.side_channel.estimate(benign_actual) + self.config.attacker_capacity;
        let alpha = self.config.estimate_ema_alpha;
        let estimated_total = match self.estimate_filter {
            // Capped slots carry no information about the underlying demand;
            // freeze the filter so the attacker's view of the load survives
            // the 5-minute capping episodes.
            Some(prev) if capping => prev,
            Some(prev) => prev * (1.0 - alpha) + raw_estimate * alpha,
            None => raw_estimate,
        };
        self.estimate_filter = Some(estimated_total);
        let observation = Observation {
            slot: k,
            battery_soc: self.battery.state_of_charge(),
            battery_stored: self.battery.stored(),
            estimated_total,
            inlet: self.zone.inlet(),
            capping,
        };

        // Complete last slot's transition now that the new estimate exists.
        if let Some(p) = self.pending.take() {
            let transition = Transition {
                observation: p.observation,
                action: p.action,
                inlet: p.inlet,
                next_battery_soc: p.next_battery_soc,
                next_battery_stored: p.next_battery_stored,
                next_estimated_total: estimated_total,
                next_capping: capping,
                day: p.observation.slot / self.slots_per_day(),
            };
            self.policy.learn(&transition);
        }

        let action = self.policy.decide(&observation);
        let attacker_metered_limit = if capping {
            self.config.attacker_emergency_cap()
        } else {
            self.config.attacker_capacity
        };

        let (attacker_metered, attacker_actual, battery_attack) = match action {
            AttackAction::Attack => {
                let metered = attacker_metered_limit;
                let delivered = self.battery.discharge(self.config.attack_load, slot);
                (metered, metered + delivered, delivered)
            }
            AttackAction::Charge => {
                let headroom = (attacker_metered_limit - self.config.standby_power).positive_part();
                let drawn = self
                    .battery
                    .charge(self.config.battery.max_charge_rate.min(headroom), slot);
                let standby = self.config.standby_power.min(attacker_metered_limit);
                // Charging draws extra metered power; only conversion losses
                // of it become heat — the rest is stored chemistry.
                let loss = drawn * (1.0 - self.config.battery.charge_efficiency);
                (standby + drawn, standby + loss, Power::ZERO)
            }
            AttackAction::Standby => {
                let standby = self.config.standby_power.min(attacker_metered_limit);
                (standby, standby, Power::ZERO)
            }
        };

        // ------ Physics. ------
        let metered_total = benign_actual + attacker_metered;
        let actual_total = benign_actual + attacker_actual;
        let inlet = self.zone.step(actual_total, slot);

        // ------ Operator protocol. ------
        let next_state = self.protocol.step(inlet, slot);
        if next_state.is_outage() {
            self.metrics.outage_events += 1;
            self.outage_remaining = Some(self.config.outage_downtime);
        }
        let capping_next = next_state.is_capping();
        if capping_next && !self.prev_capping {
            self.metrics.emergency_events += 1;
        }
        self.prev_capping = capping_next;

        // ------ Metrics. ------
        if capping {
            self.metrics.emergency_slots += 1;
            let u_inst = (benign_demand / self.config.benign_capacity()).clamp(0.0, 1.0);
            let load_frac = self.config.latency.rated_load() * u_inst;
            let degradation = self
                .config
                .latency
                .degradation(self.config.emergency_cap_fraction(), load_frac);
            self.metrics.degradation_sum += degradation;
            self.metrics.degradation_slots += 1;
        }
        if battery_attack > Power::ZERO {
            self.metrics.attack_slots += 1;
            self.metrics.attack_energy += battery_attack * slot;
        }
        self.metrics.delta_t_sum += (inlet - self.config.cooling.supply).positive_part();
        self.metrics.inlet_histogram.add(inlet.as_celsius());
        self.metrics.attacker_metered_energy += attacker_metered * slot;
        self.metrics.attacker_actual_energy += attacker_actual * slot;

        // ------ Defer the learning feedback to the next slot. ------
        self.pending = Some(PendingTransition {
            observation,
            action,
            inlet,
            next_battery_soc: self.battery.state_of_charge(),
            next_battery_stored: self.battery.stored(),
        });

        (
            SlotRecord {
                slot: k,
                benign_demand,
                benign_actual,
                metered_total,
                actual_total,
                attack_load: battery_attack,
                battery_soc: self.battery.state_of_charge(),
                estimated_total,
                action,
                inlet,
                capping,
                outage: false,
            },
            raw_estimate,
        )
    }

    fn slots_per_day(&self) -> u64 {
        slots_per_day_at(self.config.slot)
    }

    /// The report for everything simulated so far, taking the metrics *by
    /// move*: the simulation's own metrics are reset to empty (as after
    /// [`Simulation::warmup`]), and the report carries the originals without
    /// a clone. This is the hot exit path for fleet-scale runs, where
    /// cloning a [`Metrics`] (histogram included) per site adds up.
    pub fn take_report(&mut self) -> SimReport {
        let metrics = std::mem::replace(&mut self.metrics, Metrics::new(self.config.slot));
        SimReport {
            policy: self.policy.name().to_string(),
            metrics,
        }
    }

    /// A deep copy of the live simulation that continues bit-identically
    /// and independently: every piece of dynamic state (zone, protocol,
    /// battery, side-channel RNG, policy tables, metrics, pending learning
    /// transition) is cloned, while the immutable workload trace is shared
    /// via [`Arc`]. The fork starts without a recorder.
    ///
    /// This is the cheap branching primitive behind [`crate::StateTree`]
    /// and the serve layer's `/fork` endpoint: forking costs a state copy
    /// (a few kB plus the policy's Q tables), not a rebuild-from-scenario
    /// plus checkpoint round trip.
    pub fn fork(&self) -> Simulation {
        Simulation {
            config: self.config.clone(),
            trace: Arc::clone(&self.trace),
            zone: self.zone,
            protocol: self.protocol.clone(),
            battery: self.battery.clone(),
            side_channel: self.side_channel.clone(),
            policy: self.policy.clone_policy(),
            slot_index: self.slot_index,
            metrics: self.metrics.clone(),
            pending: self.pending,
            outage_remaining: self.outage_remaining,
            prev_capping: self.prev_capping,
            estimate_filter: self.estimate_filter,
            recorder: None,
        }
    }

    /// Decomposes the simulation into its components (batch-engine intake).
    pub(crate) fn into_parts(self) -> SimParts {
        SimParts {
            config: self.config,
            trace: self.trace,
            zone: self.zone,
            protocol: self.protocol,
            battery: self.battery,
            side_channel: self.side_channel,
            policy: self.policy,
            slot_index: self.slot_index,
            metrics: self.metrics,
            pending: self.pending,
            outage_remaining: self.outage_remaining,
            prev_capping: self.prev_capping,
            estimate_filter: self.estimate_filter,
            recorder: self.recorder,
        }
    }

    /// Rebuilds a simulation from components (batch-engine hand-back).
    pub(crate) fn from_parts(parts: SimParts) -> Simulation {
        Simulation {
            config: parts.config,
            trace: parts.trace,
            zone: parts.zone,
            protocol: parts.protocol,
            battery: parts.battery,
            side_channel: parts.side_channel,
            policy: parts.policy,
            slot_index: parts.slot_index,
            metrics: parts.metrics,
            pending: parts.pending,
            outage_remaining: parts.outage_remaining,
            prev_capping: parts.prev_capping,
            estimate_filter: parts.estimate_filter,
            recorder: parts.recorder,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MyopicPolicy, OneShotPolicy, RandomPolicy};
    use hbm_battery::BatterySpec;
    use hbm_power::ServerSpec;

    fn short_config() -> ColoConfig {
        ColoConfig::paper_default().with_trace_len(7 * 1440)
    }

    fn myopic(threshold_kw: f64) -> Box<dyn AttackPolicy> {
        Box::new(MyopicPolicy::new(Power::from_kilowatts(threshold_kw)))
    }

    #[test]
    fn no_attack_no_emergency() {
        // Myopic with an unreachable threshold never attacks; subscriptions
        // fit the cooling capacity, so no emergencies occur.
        let mut sim = Simulation::new(short_config(), myopic(99.0), 1);
        let report = sim.run(2 * 1440);
        assert_eq!(report.metrics.attack_slots, 0);
        assert_eq!(report.metrics.emergency_slots, 0);
        assert_eq!(report.metrics.outage_events, 0);
        assert!(report.metrics.avg_delta_t().as_celsius() < 0.05);
    }

    #[test]
    fn myopic_attack_creates_emergencies() {
        let mut sim = Simulation::new(short_config(), myopic(7.4), 1);
        let report = sim.run(7 * 1440);
        assert!(report.metrics.attack_slots > 0, "must find opportunities");
        assert!(
            report.metrics.emergency_slots > 0,
            "well-timed attacks must trigger emergencies"
        );
        assert_eq!(report.metrics.outage_events, 0, "1 kW cannot cause outage");
    }

    #[test]
    fn metered_stays_within_capacity() {
        let mut sim = Simulation::new(short_config(), myopic(7.0), 3);
        let (_, records) = sim.run_recorded(3 * 1440);
        for r in &records {
            assert!(
                r.metered_total <= Power::from_kilowatts(8.0) + Power::from_watts(1e-6),
                "metered power may never exceed capacity, got {}",
                r.metered_total
            );
        }
    }

    #[test]
    fn behind_the_meter_load_appears_only_during_attack() {
        let mut sim = Simulation::new(short_config(), myopic(7.2), 4);
        let (_, records) = sim.run_recorded(3 * 1440);
        let mut attacked = false;
        for r in &records {
            let gap = r.actual_total - r.metered_total;
            if r.action == AttackAction::Attack && r.attack_load > Power::ZERO {
                attacked = true;
                assert!(
                    gap > Power::ZERO,
                    "attack slots must show behind-the-meter load"
                );
            } else if r.action == AttackAction::Charge {
                // While charging, actual heat is *below* the metered draw —
                // the stored energy is not heat (visible in Fig. 9).
                assert!(
                    gap < Power::ZERO,
                    "charging slots must show actual below metered, gap {gap}"
                );
            } else {
                assert!(
                    gap.abs() <= Power::from_watts(20.0),
                    "standby slots must be nearly meter-accurate, gap {gap}"
                );
            }
        }
        assert!(attacked);
    }

    #[test]
    fn battery_drains_and_recharges() {
        let mut sim = Simulation::new(short_config(), myopic(7.2), 5);
        let (_, records) = sim.run_recorded(3 * 1440);
        let min_soc = records.iter().map(|r| r.battery_soc).fold(1.0, f64::min);
        let last_soc = records.last().unwrap().battery_soc;
        assert!(min_soc < 0.9, "battery must actually discharge");
        assert!(
            last_soc > min_soc - 1e-9,
            "battery must recharge afterwards"
        );
    }

    #[test]
    fn random_policy_fails_to_create_emergencies() {
        // Fig. 9 / Fig. 11c: Random (8 % attack probability) spreads its
        // battery budget over mostly-low-load slots.
        let config = short_config();
        let policy = RandomPolicy::new(0.08, config.attack_load, config.slot, 11);
        let mut sim = Simulation::new(config, Box::new(policy), 1);
        let report = sim.run(7 * 1440);
        assert!(report.metrics.attack_slots > 0);
        assert_eq!(
            report.metrics.emergency_slots, 0,
            "random timing should not produce emergencies"
        );
    }

    #[test]
    fn one_shot_attack_causes_outage() {
        // Fig. 8: a 3 kW battery-backed load launched at high benign load
        // drives the inlet past 45 °C despite the operator's capping.
        let mut config = short_config();
        config.battery = BatterySpec::one_shot();
        config.attack_load = Power::from_kilowatts(3.0);
        let policy = OneShotPolicy::new(Power::from_kilowatts(7.6));
        let mut sim = Simulation::new(config, Box::new(policy), 1);
        let report = sim.run(3 * 1440);
        assert!(
            report.metrics.outage_events >= 1,
            "one-shot attack must shut the colocation down"
        );
        assert!(report.metrics.outage_slots > 0);
    }

    #[test]
    fn emergency_caps_benign_power() {
        let mut sim = Simulation::new(short_config(), myopic(7.2), 1);
        let (_, records) = sim.run_recorded(7 * 1440);
        let capped: Vec<_> = records.iter().filter(|r| r.capping).collect();
        assert!(!capped.is_empty());
        for r in capped {
            assert!(
                r.benign_actual <= Power::from_kilowatts(4.32) + Power::from_watts(1e-6),
                "capped benign power {} exceeds 36×120 W",
                r.benign_actual
            );
        }
    }

    #[test]
    fn degradation_recorded_during_emergencies() {
        let mut sim = Simulation::new(short_config(), myopic(7.2), 8);
        let report = sim.run(7 * 1440);
        if report.metrics.emergency_slots > 0 {
            let d = report.metrics.mean_emergency_degradation();
            assert!(d > 1.5, "capping must hurt tail latency, got {d}");
        }
    }

    #[test]
    fn estimate_filter_freezes_during_capping() {
        // Capped slots carry no information about the underlying demand;
        // the attacker's filtered estimate must hold its pre-emergency
        // value through the 5-minute capping episodes.
        let mut sim = Simulation::new(short_config(), myopic(7.4), 1);
        let (_, records) = sim.run_recorded(7 * 1440);
        let mut checked = 0;
        for w in records.windows(2) {
            if w[0].capping && w[1].capping && !w[1].outage {
                assert_eq!(
                    w[0].estimated_total, w[1].estimated_total,
                    "estimate must freeze across capped slots"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "no capped windows exercised");
    }

    #[test]
    fn deterministic_given_seeds() {
        let run = || {
            let mut sim = Simulation::new(short_config(), myopic(7.4), 9);
            sim.run(1440).metrics
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn warmup_discards_metrics_but_keeps_time() {
        let mut sim = Simulation::new(short_config(), myopic(7.4), 10);
        sim.warmup(1440);
        assert_eq!(sim.metrics().slots, 0);
        let report = sim.run(1440);
        assert_eq!(report.metrics.slots, 1440);
    }

    #[test]
    fn attacker_peak_is_consistent_with_server_specs() {
        // 4 × 450 W attack servers = 0.8 kW subscribed + 1 kW battery.
        let spec = ServerSpec::attacker_repeated();
        let config = ColoConfig::paper_default();
        assert_eq!(
            spec.peak * config.attacker_servers as f64,
            config.attacker_capacity + config.attack_load
        );
    }
}
