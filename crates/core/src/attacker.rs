//! Attack policies: Random, Myopic, Foresighted (batch Q-learning), and
//! One-shot.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use hbm_rl::{BatchQLearning, EpsilonSchedule, LearningRate, QLearning, UniformGrid};
use hbm_units::{Duration, Energy, Power, Temperature};

/// What the attacker does in one slot (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackAction {
    /// Recharge the built-in batteries from the PDU.
    Charge,
    /// Run servers at peak and discharge batteries: inject the attack load.
    Attack,
    /// Run dummy workloads; neither charge nor discharge.
    Standby,
}

impl AttackAction {
    pub(crate) const COUNT: usize = 3;

    pub(crate) fn index(self) -> usize {
        match self {
            AttackAction::Charge => 0,
            AttackAction::Attack => 1,
            AttackAction::Standby => 2,
        }
    }

    pub(crate) fn from_index(i: usize) -> AttackAction {
        match i {
            0 => AttackAction::Charge,
            1 => AttackAction::Attack,
            2 => AttackAction::Standby,
            _ => panic!("invalid action index {i}"),
        }
    }
}

impl std::fmt::Display for AttackAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackAction::Charge => f.write_str("charge"),
            AttackAction::Attack => f.write_str("attack"),
            AttackAction::Standby => f.write_str("standby"),
        }
    }
}

/// What the attacker can observe at the start of a slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Slot index since simulation start.
    pub slot: u64,
    /// Battery state of charge in `[0, 1]`.
    pub battery_soc: f64,
    /// Battery stored energy.
    pub battery_stored: Energy,
    /// Side-channel estimate of the total PDU load if the attacker ran at
    /// its full subscription (estimated benign load + `c_a`). This is the
    /// load axis of Figs. 9 and 10.
    pub estimated_total: Power,
    /// Server inlet temperature read from the attacker's own sensors (the
    /// paper notes all servers expose it for safety).
    pub inlet: Temperature,
    /// Whether the operator currently enforces emergency power capping.
    pub capping: bool,
}

/// One completed slot, fed back to learning policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// The observation the decision was made on.
    pub observation: Observation,
    /// The action actually executed (may differ from the decision if the
    /// operator's capping overrode it).
    pub action: AttackAction,
    /// Server inlet temperature resulting from the slot, `T(s, a)`.
    pub inlet: Temperature,
    /// Battery state of charge after the slot.
    pub next_battery_soc: f64,
    /// Battery stored energy after the slot.
    pub next_battery_stored: Energy,
    /// Side-channel estimate at the start of the next slot.
    pub next_estimated_total: Power,
    /// Whether capping is active in the next slot.
    pub next_capping: bool,
    /// Days elapsed since simulation start (drives the learning-rate
    /// schedule, which the paper updates daily).
    pub day: u64,
}

/// A thermal-attack timing policy.
///
/// The simulator calls [`AttackPolicy::decide`] once per slot and
/// [`AttackPolicy::learn`] after the slot's outcome is known. Non-learning
/// policies keep the default no-op `learn`.
///
/// `Send` is a supertrait so boxed policies can move into the worker
/// threads of the parallel experiment harness.
pub trait AttackPolicy: std::any::Any + Send {
    /// Short policy name for reports ("random", "myopic", …).
    fn name(&self) -> &str;

    /// Chooses the action for the upcoming slot.
    fn decide(&mut self, obs: &Observation) -> AttackAction;

    /// Feeds back the completed slot (used by learning policies).
    fn learn(&mut self, transition: &Transition) {
        let _ = transition;
    }

    /// Whether [`AttackPolicy::learn`] does anything. The batch engine skips
    /// building [`Transition`]s for policies that return `false`; the default
    /// is conservatively `true` so custom learning policies keep working.
    fn wants_learn(&self) -> bool {
        true
    }

    /// A boxed deep copy of the policy, RNG state and learnt tables
    /// included. This is what makes [`crate::Simulation::fork`] cheap: the
    /// forked lane continues bit-identically to the original without a
    /// serialize/rebuild round trip.
    fn clone_policy(&self) -> Box<dyn AttackPolicy>;

    /// Upcast for inspecting a concrete policy after a run (e.g. reading
    /// the learnt [`ForesightedPolicy::policy_matrix`] for Fig. 10).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable counterpart of [`AttackPolicy::as_any`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Whether the battery can sustain one full slot of attacking.
pub(crate) fn can_attack(stored: Energy, attack_load: Power, slot: Duration) -> bool {
    stored >= attack_load * slot * 0.999
}

/// **Random**: attacks with a fixed probability whenever the battery has
/// enough energy, oblivious to the benign tenants' load (the paper's
/// baseline that never manages to create an emergency).
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    probability: f64,
    attack_load: Power,
    slot: Duration,
    rng: StdRng,
}

impl RandomPolicy {
    /// Creates the policy with the given per-slot attack probability.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]`.
    pub fn new(probability: f64, attack_load: Power, slot: Duration, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0, 1]"
        );
        RandomPolicy {
            probability,
            attack_load,
            slot,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// RNG state words for checkpoint serialization.
    pub(crate) fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Overwrites the RNG from checkpointed state words.
    pub(crate) fn restore_rng(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }
}

impl AttackPolicy for RandomPolicy {
    fn name(&self) -> &str {
        "random"
    }

    fn wants_learn(&self) -> bool {
        false
    }

    fn clone_policy(&self) -> Box<dyn AttackPolicy> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn decide(&mut self, obs: &Observation) -> AttackAction {
        if obs.capping {
            return AttackAction::Standby;
        }
        if can_attack(obs.battery_stored, self.attack_load, self.slot)
            && self.rng.random::<f64>() < self.probability
        {
            AttackAction::Attack
        } else if obs.battery_soc < 1.0 {
            AttackAction::Charge
        } else {
            AttackAction::Standby
        }
    }
}

/// **Myopic**: attacks greedily whenever the estimated load is above a
/// threshold and the battery has energy, with no regard for the future
/// (Section VI's greedy baseline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MyopicPolicy {
    threshold: Power,
    attack_load: Power,
    slot: Duration,
}

impl MyopicPolicy {
    /// Creates the policy with the default Table I attack parameters and
    /// the given load threshold (7.4 kW in the paper's Fig. 9).
    pub fn new(threshold: Power) -> Self {
        MyopicPolicy {
            threshold,
            attack_load: Power::from_kilowatts(1.0),
            slot: Duration::from_minutes(1.0),
        }
    }

    /// Creates the policy with explicit attack parameters.
    pub fn with_attack(threshold: Power, attack_load: Power, slot: Duration) -> Self {
        MyopicPolicy {
            threshold,
            attack_load,
            slot,
        }
    }

    /// The load threshold above which it attacks.
    pub fn threshold(&self) -> Power {
        self.threshold
    }

    /// The minimum stored energy at which the attack arms, computed with
    /// the exact arithmetic [`decide`](AttackPolicy::decide) uses. Batch
    /// engines precompute this per lane so a fleet of myopic attackers can
    /// be decided without going through the trait object.
    pub fn arm_energy(&self) -> Energy {
        self.attack_load * self.slot * 0.999
    }
}

impl AttackPolicy for MyopicPolicy {
    fn name(&self) -> &str {
        "myopic"
    }

    fn wants_learn(&self) -> bool {
        false
    }

    fn clone_policy(&self) -> Box<dyn AttackPolicy> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn decide(&mut self, obs: &Observation) -> AttackAction {
        if obs.capping {
            return AttackAction::Standby;
        }
        if obs.estimated_total >= self.threshold
            && can_attack(obs.battery_stored, self.attack_load, self.slot)
        {
            AttackAction::Attack
        } else if obs.battery_soc < 1.0 {
            AttackAction::Charge
        } else {
            AttackAction::Standby
        }
    }
}

/// **One-shot**: keeps the battery topped up, waits for a high-load moment,
/// then discharges everything continuously to push the inlet temperature
/// past the 45 °C shutdown limit (Section III-C). Unlike the repeated
/// policies it keeps its *actual* load at peak straight through the
/// operator's capping — the metered draw complies, the battery-fed heat
/// does not.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OneShotPolicy {
    threshold: Power,
    triggered: bool,
}

impl OneShotPolicy {
    /// Creates the policy; it fires once the estimated total reaches
    /// `threshold`.
    pub fn new(threshold: Power) -> Self {
        OneShotPolicy {
            threshold,
            triggered: false,
        }
    }

    /// Whether the attack has been launched.
    pub fn triggered(&self) -> bool {
        self.triggered
    }

    /// Overwrites the trigger latch (checkpoint restore).
    pub(crate) fn set_triggered(&mut self, triggered: bool) {
        self.triggered = triggered;
    }
}

impl AttackPolicy for OneShotPolicy {
    fn name(&self) -> &str {
        "one-shot"
    }

    fn wants_learn(&self) -> bool {
        false
    }

    fn clone_policy(&self) -> Box<dyn AttackPolicy> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn decide(&mut self, obs: &Observation) -> AttackAction {
        if self.triggered {
            // Ride it out: discharge until the battery is empty or the
            // colocation is down.
            return if obs.battery_stored > Energy::ZERO {
                AttackAction::Attack
            } else {
                AttackAction::Standby
            };
        }
        if obs.estimated_total >= self.threshold && obs.battery_soc >= 0.999 && !obs.capping {
            self.triggered = true;
            AttackAction::Attack
        } else if obs.battery_soc < 1.0 {
            AttackAction::Charge
        } else {
            AttackAction::Standby
        }
    }
}

/// The learning rule driving a [`ForesightedPolicy`].
///
/// The paper uses batch Q-learning (post-decision states); classic
/// Q-learning is kept as the ablation baseline — same state space, same
/// schedules, same execution machinery, different update rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Learner {
    /// The paper's batch Q-learning (Eqns. 3–7).
    Batch(BatchQLearning),
    /// Classic tabular Q-learning.
    Standard(QLearning),
}

impl Learner {
    fn select_greedy<F>(&self, s: usize, allowed: &[usize], post: F) -> usize
    where
        F: Fn(usize, usize) -> usize,
    {
        match self {
            Learner::Batch(agent) => agent.select_greedy(s, allowed, post),
            Learner::Standard(agent) => agent.select_greedy(s, allowed),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn update<F>(
        &mut self,
        s: usize,
        a: usize,
        reward: f64,
        s_next: usize,
        allowed_next: &[usize],
        post: F,
        delta: f64,
    ) where
        F: Fn(usize, usize) -> usize,
    {
        match self {
            Learner::Batch(agent) => agent.update(s, a, reward, s_next, allowed_next, post, delta),
            Learner::Standard(agent) => agent.update(s, a, reward, s_next, allowed_next, delta),
        }
    }
}

/// **Foresighted**: the paper's contribution — batch Q-learning over the
/// joint (battery, estimated-load) state, learning on the fly when attacks
/// pay off (Section IV).
///
/// The learnt policy has the paper's structural property (Fig. 10): attack
/// only when *both* the benign load and the remaining battery energy are
/// sufficiently high, with the battery bar dropping as the reward weight
/// `w` grows.
///
/// One refinement over the paper's stated `s = (b, u)` state: a coarse
/// inlet-temperature-rise coordinate is appended. The room temperature is
/// the accumulating quantity that makes *sustained* attacks pay off (the
/// reward of Eqn. 2 is itself a function of it), and without it in the
/// state the problem is partially observable and tabular Q-learning
/// oscillates instead of sustaining attacks. The attacker reads the inlet
/// temperature from its own servers' sensors, exactly as the paper's
/// reward computation already assumes.
#[derive(Debug, Clone)]
pub struct ForesightedPolicy {
    agent: Learner,
    battery_grid: UniformGrid,
    load_grid: UniformGrid,
    temp_grid: UniformGrid,
    w: f64,
    setpoint: Temperature,
    learning_rate: LearningRate,
    epsilon: EpsilonSchedule,
    rng: StdRng,
    attack_load: Power,
    slot: Duration,
    /// Colocation capacity (known to every tenant from its contract).
    capacity: Power,
    /// State-of-charge delta of one slot of charging / attacking, used by
    /// the deterministic post-state map (the paper's linear battery model).
    charge_soc_per_slot: f64,
    attack_soc_per_slot: f64,
    learning_enabled: bool,
    /// Bootstrap teacher (the paper's "initial attack policy" used to
    /// initialize the Q tables offline): a myopic threshold followed with
    /// decaying probability during the first `teacher_days` days.
    teacher_threshold: Power,
    teacher_days: u64,
    /// Minimum state of charge required to *launch* an attack (continuing
    /// a committed one is exempt). See `allowed_for_soc`.
    min_launch_soc: f64,
    /// Attack-campaign execution state; see [`Campaign`].
    campaign: Campaign,
}

/// Execution state of a sustained attack campaign (the cycle the paper's
/// Fig. 9 walks through: launch a sustained attack, stop at the emergency,
/// "wait to regain the battery energy", and launch the next sustained
/// attack while the load holds).
///
/// The learnt policy decides *when a campaign starts*; this state machine
/// executes it. Without it, every recharge corridor would require the
/// tabular learner to hold a consistent plan across ~40 consecutive
/// decisions, which the coarse battery grid cannot represent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Campaign {
    /// No campaign; the learnt policy decides freely.
    Idle,
    /// Mid-attack: keep discharging until the emergency, dry battery, or
    /// load collapse.
    Attacking {
        /// Estimated total load when the campaign launched.
        launch_est: Power,
    },
    /// Between attacks of a campaign: recharge, then relaunch while the
    /// load still holds near the launch level.
    Recharging {
        /// Estimated total load when the campaign launched.
        launch_est: Power,
    },
}

impl ForesightedPolicy {
    /// Default numbers of battery and load bins.
    pub const BATTERY_BINS: usize = 10;
    /// Default number of load bins.
    pub const LOAD_BINS: usize = 16;
    /// Default number of inlet-temperature-rise bins.
    pub const TEMP_BINS: usize = 4;

    /// Creates the policy.
    ///
    /// * `w` — reward weight of Eqn. 2 (14 in the paper's defaults);
    /// * `capacity` — colocation capacity (upper end of the load grid);
    /// * `battery_capacity`, `charge_rate`, `attack_load`, `slot` — the
    ///   attacker's Table I battery parameters.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative or any physical parameter is non-positive.
    pub fn new(
        w: f64,
        capacity: Power,
        battery_capacity: Energy,
        charge_rate: Power,
        attack_load: Power,
        slot: Duration,
        seed: u64,
    ) -> Self {
        assert!(w >= 0.0, "reward weight must be non-negative");
        assert!(capacity > Power::ZERO, "capacity must be positive");
        assert!(
            battery_capacity > Energy::ZERO,
            "battery capacity must be positive"
        );
        let battery_grid = UniformGrid::new(0.0, 1.0, Self::BATTERY_BINS);
        // The decision-relevant load range is the top of the capacity band
        // (everything below cannot overload the cooling even with the attack
        // load on top); the grid clamps lower loads into its bottom bin.
        let load_grid = UniformGrid::new(
            capacity.as_kilowatts() * 0.70,
            capacity.as_kilowatts() * 1.05,
            Self::LOAD_BINS,
        );
        let temp_grid = UniformGrid::new(0.0, 6.0, Self::TEMP_BINS);
        let states = battery_grid.len() * load_grid.len() * temp_grid.len();
        ForesightedPolicy {
            agent: Learner::Batch(BatchQLearning::new(
                states,
                AttackAction::COUNT,
                states,
                0.99,
            )),
            battery_grid,
            load_grid,
            temp_grid,
            w,
            setpoint: Temperature::from_celsius(27.0),
            learning_rate: LearningRate::paper_default(),
            // Gentle exploration: a random action inside an attack run
            // breaks the temperature dwell, so keep ε low and fast-decaying.
            epsilon: EpsilonSchedule {
                initial: 0.05,
                decay: 0.90,
                floor: 0.002,
            },
            rng: StdRng::seed_from_u64(seed),
            attack_load,
            slot,
            capacity,
            charge_soc_per_slot: (charge_rate * slot) / battery_capacity,
            attack_soc_per_slot: (attack_load * slot) / battery_capacity,
            learning_enabled: true,
            teacher_threshold: capacity * 0.945,
            teacher_days: 60,
            // The paper's Fig. 10: the battery level above which the learnt
            // policy attacks drops as the reward weight w grows (≈60 % at
            // w = 9, ≈40 % at w = 14). Encode that dependence directly.
            min_launch_soc: (0.9 - 0.02 * w).clamp(0.55, 0.9),
            campaign: Campaign::Idle,
        }
    }

    /// Creates the policy with the paper's Table I defaults and weight `w`.
    pub fn paper_default(w: f64, seed: u64) -> Self {
        ForesightedPolicy::new(
            w,
            Power::from_kilowatts(8.0),
            Energy::from_kilowatt_hours(0.2),
            Power::from_kilowatts(0.2),
            Power::from_kilowatts(1.0),
            Duration::from_minutes(1.0),
            seed,
        )
    }

    /// Replaces the learning rule with classic Q-learning (the ablation
    /// baseline of the paper's batch variant); tables restart from zero.
    pub fn with_standard_q(mut self) -> Self {
        let states = self.battery_grid.len() * self.load_grid.len() * self.temp_grid.len();
        self.agent = Learner::Standard(QLearning::new(states, AttackAction::COUNT, 0.99));
        self
    }

    /// The learning rule in use.
    pub fn learner(&self) -> &Learner {
        &self.agent
    }

    /// The reward weight `w`.
    pub fn weight(&self) -> f64 {
        self.w
    }

    /// Freezes (or re-enables) learning and exploration — used to evaluate
    /// a converged policy.
    pub fn set_learning(&mut self, enabled: bool) {
        self.learning_enabled = enabled;
    }

    /// Reconfigures the bootstrap teacher (threshold and how many days it
    /// guides exploration). Setting `days` to 0 disables it.
    pub fn set_teacher(&mut self, threshold: Power, days: u64) {
        self.teacher_threshold = threshold;
        self.teacher_days = days;
    }

    /// Sets the minimum state of charge required to launch an attack.
    ///
    /// # Panics
    ///
    /// Panics if `soc` is outside `[0, 1]`.
    pub fn set_min_launch_soc(&mut self, soc: f64) {
        assert!((0.0..=1.0).contains(&soc), "SoC must be in [0, 1]");
        self.min_launch_soc = soc;
    }

    fn state_of(&self, soc: f64, estimated_total: Power, inlet: Temperature) -> usize {
        let b = self.battery_grid.index(soc);
        let u = self.load_grid.index(estimated_total.as_kilowatts());
        let rise = (inlet - self.setpoint).positive_part().as_celsius();
        let t = self.temp_grid.index(rise);
        (b * self.load_grid.len() + u) * self.temp_grid.len() + t
    }

    /// Actions available in a state. Order matters: greedy ties break to
    /// the first entry. `Charge` is listed first because it strictly
    /// dominates `Standby` whenever the battery is not full (same cost,
    /// strictly more future energy) yet the coarse battery grid can make
    /// one slot of charging invisible to the post-state map; `Attack` is
    /// listed last so that it is only chosen on strictly positive learned
    /// value, never on a cold-start tie.
    ///
    /// *Launching* an attack additionally requires the battery to be above
    /// `min_launch_soc`. This encodes the structural property the paper
    /// reports for the learnt policy (Fig. 10: no attacks below ≈40–60 %
    /// battery): a one-slot dribble can never outlast the operator's
    /// 2-minute dwell, but it pays a small positive Eqn.-2 reward, which
    /// traps tabular learning in a dribble equilibrium — the long recharge
    /// corridor is invisible at the battery-grid resolution. Continuing an
    /// already-committed attack bypasses this gate.
    fn allowed_for_soc(&self, soc: f64, stored_ok: bool) -> AllowedActions {
        let mut allowed = AllowedActions::new();
        if soc < 0.999 {
            allowed.push(AttackAction::Charge.index());
        }
        allowed.push(AttackAction::Standby.index());
        if stored_ok && soc >= self.min_launch_soc {
            allowed.push(AttackAction::Attack.index());
        }
        allowed
    }

    /// The deterministic post-state map `f(s, a)` (Eqn. 4): only the battery
    /// coordinate moves; the load and temperature coordinates stay.
    fn post_state(&self, s: usize, a: usize) -> usize {
        post_state_for(self, s, a)
    }

    /// Eqn. 2 reward.
    fn reward(&self, inlet: Temperature, action: AttackAction) -> f64 {
        let dt = (inlet - self.setpoint).positive_part().as_celsius();
        let beta = if action == AttackAction::Attack {
            1.0
        } else {
            0.0
        };
        self.w * dt - beta
    }

    /// The greedy action for every `(battery bin, load bin)` cell at the
    /// normal room temperature — the structure plot of Fig. 10 (the
    /// decision whether to *start* an attack). Rows are battery bins
    /// (low→high), columns load bins (low→high).
    pub fn policy_matrix(&self) -> Vec<Vec<AttackAction>> {
        (0..self.battery_grid.len())
            .map(|b| {
                let soc = self.battery_grid.center(b);
                (0..self.load_grid.len())
                    .map(|u| {
                        // Temperature bin 0: inlet at the setpoint.
                        let s = (b * self.load_grid.len() + u) * self.temp_grid.len();
                        // Attack is feasible whenever the bin's SoC covers
                        // one slot; mirror `allowed_for_soc`.
                        let stored_ok = soc >= self.attack_soc_per_slot;
                        let allowed = self.allowed_for_soc(soc, stored_ok);
                        let a = self
                            .agent
                            .select_greedy(s, &allowed, |s, a| self.post_state(s, a));
                        AttackAction::from_index(a)
                    })
                    .collect()
            })
            .collect()
    }

    /// Per-action `(Q, V(post), Q + γ·V(post))` at the state holding the
    /// given continuous coordinates — diagnostic view of the learnt tables.
    pub fn cell_values(
        &self,
        soc: f64,
        estimated_total: Power,
        inlet: Temperature,
    ) -> Vec<(AttackAction, f64, f64, f64)> {
        let s = self.state_of(soc, estimated_total, inlet);
        (0..AttackAction::COUNT)
            .map(|a| match &self.agent {
                Learner::Batch(agent) => {
                    let q = agent.q_table().get(s, a);
                    let v = agent.post_values()[self.post_state(s, a)];
                    (AttackAction::from_index(a), q, v, q + agent.gamma() * v)
                }
                Learner::Standard(agent) => {
                    let q = agent.table().get(s, a);
                    (AttackAction::from_index(a), q, 0.0, q)
                }
            })
            .collect()
    }

    /// Mutable access to the learning rule (checkpoint restore of the Q
    /// tables).
    pub(crate) fn learner_mut(&mut self) -> &mut Learner {
        &mut self.agent
    }

    /// RNG state words for checkpoint serialization.
    pub(crate) fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Overwrites the exploration RNG from checkpointed state words.
    pub(crate) fn restore_rng(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }

    /// Whether learning and exploration are enabled.
    pub(crate) fn learning_enabled(&self) -> bool {
        self.learning_enabled
    }

    /// The campaign state as `(code, launch-estimate watts)`:
    /// 0 = idle, 1 = attacking, 2 = recharging (checkpoint serialization).
    pub(crate) fn campaign_code(&self) -> (u64, f64) {
        match self.campaign {
            Campaign::Idle => (0, 0.0),
            Campaign::Attacking { launch_est } => (1, launch_est.as_watts()),
            Campaign::Recharging { launch_est } => (2, launch_est.as_watts()),
        }
    }

    /// Overwrites the campaign state from its checkpointed
    /// `(code, launch-estimate watts)` form.
    pub(crate) fn restore_campaign(&mut self, code: u64, launch_watts: f64) -> Result<(), String> {
        self.campaign = match code {
            0 => Campaign::Idle,
            1 => Campaign::Attacking {
                launch_est: Power::from_watts(launch_watts),
            },
            2 => Campaign::Recharging {
                launch_est: Power::from_watts(launch_watts),
            },
            other => return Err(format!("invalid campaign code {other}")),
        };
        Ok(())
    }

    /// The current campaign execution state (batch-engine lane packing).
    pub(crate) fn campaign(&self) -> Campaign {
        self.campaign
    }

    /// Overwrites the campaign execution state (batch-engine lane
    /// sync-back when a devirtualized fleet hands its lanes back).
    pub(crate) fn set_campaign(&mut self, campaign: Campaign) {
        self.campaign = campaign;
    }

    /// A copy of the immutable per-lane parameters the batch engine hoists
    /// into columns when it devirtualizes a fleet of foresighted lanes.
    pub(crate) fn lane_params(&self) -> ForesightedLaneParams {
        ForesightedLaneParams {
            battery_grid: self.battery_grid,
            load_grid: self.load_grid,
            temp_grid: self.temp_grid,
            w: self.w,
            setpoint: self.setpoint,
            learning_rate: self.learning_rate,
            epsilon: self.epsilon,
            attack_load: self.attack_load,
            slot: self.slot,
            capacity: self.capacity,
            charge_soc_per_slot: self.charge_soc_per_slot,
            attack_soc_per_slot: self.attack_soc_per_slot,
            learning_enabled: self.learning_enabled,
            teacher_threshold: self.teacher_threshold,
            teacher_days: self.teacher_days,
            min_launch_soc: self.min_launch_soc,
        }
    }

    /// The load-bin centers of the policy matrix columns, in kW.
    pub fn load_bin_centers_kw(&self) -> Vec<f64> {
        (0..self.load_grid.len())
            .map(|u| self.load_grid.center(u))
            .collect()
    }

    /// The battery-bin centers of the policy matrix rows (state of charge).
    pub fn battery_bin_centers(&self) -> Vec<f64> {
        (0..self.battery_grid.len())
            .map(|b| self.battery_grid.center(b))
            .collect()
    }
}

/// The immutable parameters of one [`ForesightedPolicy`] lane, copied out
/// for the batch engine's column storage (see `batch::ForesightedLanes`).
/// Everything the scalar `decide`/`learn` paths read, minus the mutable
/// state (learner tables, RNG, campaign) that the lanes own directly.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ForesightedLaneParams {
    pub(crate) battery_grid: UniformGrid,
    pub(crate) load_grid: UniformGrid,
    pub(crate) temp_grid: UniformGrid,
    pub(crate) w: f64,
    pub(crate) setpoint: Temperature,
    pub(crate) learning_rate: LearningRate,
    pub(crate) epsilon: EpsilonSchedule,
    pub(crate) attack_load: Power,
    pub(crate) slot: Duration,
    pub(crate) capacity: Power,
    pub(crate) charge_soc_per_slot: f64,
    pub(crate) attack_soc_per_slot: f64,
    pub(crate) learning_enabled: bool,
    pub(crate) teacher_threshold: Power,
    pub(crate) teacher_days: u64,
    pub(crate) min_launch_soc: f64,
}

impl ForesightedLaneParams {
    /// Mirror of the scalar policy's `state_of`, operation for operation —
    /// the batch engine must produce bit-identical state indices.
    pub(crate) fn state_of(&self, soc: f64, estimated_total: Power, inlet: Temperature) -> usize {
        let b = self.battery_grid.index(soc);
        let u = self.load_grid.index(estimated_total.as_kilowatts());
        let rise = (inlet - self.setpoint).positive_part().as_celsius();
        let t = self.temp_grid.index(rise);
        (b * self.load_grid.len() + u) * self.temp_grid.len() + t
    }

    /// Mirror of the scalar policy's `allowed_for_soc` (same push order —
    /// greedy ties must break identically).
    pub(crate) fn allowed_for_soc(&self, soc: f64, stored_ok: bool) -> AllowedActions {
        let mut allowed = AllowedActions::new();
        if soc < 0.999 {
            allowed.push(AttackAction::Charge.index());
        }
        allowed.push(AttackAction::Standby.index());
        if stored_ok && soc >= self.min_launch_soc {
            allowed.push(AttackAction::Attack.index());
        }
        allowed
    }

    /// Mirror of the scalar policy's Eqn. 2 reward.
    pub(crate) fn reward(&self, inlet: Temperature, action: AttackAction) -> f64 {
        let dt = (inlet - self.setpoint).positive_part().as_celsius();
        let beta = if action == AttackAction::Attack {
            1.0
        } else {
            0.0
        };
        self.w * dt - beta
    }

    /// Mirror of the scalar policy's deterministic post-state map.
    pub(crate) fn post_state(&self, s: usize, a: usize) -> usize {
        post_state_impl(
            s,
            a,
            self.charge_soc_per_slot,
            self.attack_soc_per_slot,
            self.battery_grid,
            self.load_grid.len(),
            self.temp_grid.len(),
        )
    }
}

impl AttackPolicy for ForesightedPolicy {
    fn name(&self) -> &str {
        "foresighted"
    }

    fn clone_policy(&self) -> Box<dyn AttackPolicy> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn decide(&mut self, obs: &Observation) -> AttackAction {
        if obs.capping {
            // Emergency declared: this attack achieved its goal. Comply,
            // and use the capped window to start regaining battery energy.
            if let Campaign::Attacking { launch_est } = self.campaign {
                self.campaign = Campaign::Recharging { launch_est };
            }
            return AttackAction::Standby;
        }
        let s = self.state_of(obs.battery_soc, obs.estimated_total, obs.inlet);
        let stored_ok = can_attack(obs.battery_stored, self.attack_load, self.slot);

        // Campaign execution (Fig. 9's cycle).
        let load_collapsed =
            |launch_est: Power| obs.estimated_total < launch_est - Power::from_kilowatts(0.4);
        // The attacker knows the colocation capacity (its contract) and its
        // own attack load: attacking is pointless once the estimated
        // cooling overload is marginal.
        let ineffective =
            obs.estimated_total + self.attack_load < self.capacity + Power::from_kilowatts(0.25);
        match self.campaign {
            Campaign::Attacking { launch_est } => {
                if load_collapsed(launch_est) || ineffective {
                    self.campaign = Campaign::Idle;
                } else if !stored_ok {
                    self.campaign = Campaign::Recharging { launch_est };
                } else {
                    return AttackAction::Attack;
                }
            }
            Campaign::Recharging { launch_est } => {
                if load_collapsed(launch_est) || ineffective {
                    self.campaign = Campaign::Idle;
                } else if obs.battery_soc >= self.min_launch_soc && stored_ok {
                    self.campaign = Campaign::Attacking { launch_est };
                    return AttackAction::Attack;
                } else {
                    return AttackAction::Charge;
                }
            }
            Campaign::Idle => {}
        }

        let allowed = self.allowed_for_soc(obs.battery_soc, stored_ok);
        let day = obs.slot / (Duration::from_days(1.0) / self.slot) as u64 + 1;

        // Bootstrap phase: the initial attack policy drives behaviour while
        // the tables learn off-policy what a successful sustained attack
        // (and the emergency it triggers) is worth. Mixing control here
        // would fragment attack runs and never demonstrate an emergency.
        // The teacher only *launches* with a mostly-charged battery — a
        // one-slot dribble can never outlast the operator's 2-minute dwell,
        // and the paper's learnt policy (Fig. 10) shows the same battery
        // bar.
        if self.learning_enabled && day <= self.teacher_days {
            return if obs.estimated_total >= self.teacher_threshold
                && obs.battery_soc >= self.min_launch_soc
                && stored_ok
            {
                self.campaign = Campaign::Attacking {
                    launch_est: obs.estimated_total,
                };
                AttackAction::Attack
            } else if obs.battery_soc < 1.0 {
                AttackAction::Charge
            } else {
                AttackAction::Standby
            };
        }

        let eps = if self.learning_enabled {
            self.epsilon.at(day)
        } else {
            0.0
        };
        // Split borrows: the closure must not capture &self while the RNG is
        // borrowed mutably, so inline the selection here.
        let a = if eps > 0.0 && self.rng.random::<f64>() < eps {
            allowed[self.rng.random_range(0..allowed.len())]
        } else {
            self.agent
                .select_greedy(s, &allowed, |s, a| post_state_for(self, s, a))
        };
        let action = AttackAction::from_index(a);
        if action == AttackAction::Attack {
            self.campaign = Campaign::Attacking {
                launch_est: obs.estimated_total,
            };
        }
        action
    }

    fn learn(&mut self, t: &Transition) {
        if !self.learning_enabled {
            return;
        }
        // Capping slots are included in learning: the elevated temperature
        // during an emergency is the payoff Eqn. 2 rewards, and the
        // simulator freezes the attacker's load-estimate filter during
        // capping, so those rewards are credited to the (high-load) states
        // that earned them rather than to the capped metered load.
        let s = self.state_of(
            t.observation.battery_soc,
            t.observation.estimated_total,
            t.observation.inlet,
        );
        // The inlet produced by this slot is the temperature coordinate the
        // attacker observes entering the next slot.
        let s_next = self.state_of(t.next_battery_soc, t.next_estimated_total, t.inlet);
        let stored_ok = can_attack(t.next_battery_stored, self.attack_load, self.slot);
        let allowed_next = self.allowed_for_soc(t.next_battery_soc, stored_ok);
        let reward = self.reward(t.inlet, t.action);
        let delta = self.learning_rate.at(t.day + 1);
        let charge = self.charge_soc_per_slot;
        let attack = self.attack_soc_per_slot;
        let battery_grid = self.battery_grid;
        let load_bins = self.load_grid.len();
        let temp_bins = self.temp_grid.len();
        let post = move |s: usize, a: usize| {
            post_state_impl(s, a, charge, attack, battery_grid, load_bins, temp_bins)
        };
        self.agent.update(
            s,
            t.action.index(),
            reward,
            s_next,
            &allowed_next,
            post,
            delta,
        );
    }
}

/// Fixed-capacity list of allowed action indices, in the tie-breaking order
/// `allowed_for_soc` documents. `decide` and `learn` both build one every
/// slot, so this stays on the stack — a `Vec` here was the last per-slot
/// heap allocation in the simulator's steady loop.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AllowedActions {
    actions: [usize; AttackAction::COUNT],
    len: usize,
}

impl AllowedActions {
    pub(crate) fn new() -> Self {
        AllowedActions {
            actions: [0; AttackAction::COUNT],
            len: 0,
        }
    }

    pub(crate) fn push(&mut self, action: usize) {
        self.actions[self.len] = action;
        self.len += 1;
    }
}

impl std::ops::Deref for AllowedActions {
    type Target = [usize];
    fn deref(&self) -> &[usize] {
        &self.actions[..self.len]
    }
}

/// Free-function mirror of [`ForesightedPolicy::post_state`] usable inside
/// closures that cannot capture `&self` twice.
fn post_state_for(p: &ForesightedPolicy, s: usize, a: usize) -> usize {
    post_state_impl(
        s,
        a,
        p.charge_soc_per_slot,
        p.attack_soc_per_slot,
        p.battery_grid,
        p.load_grid.len(),
        p.temp_grid.len(),
    )
}

pub(crate) fn post_state_impl(
    s: usize,
    a: usize,
    charge_soc: f64,
    attack_soc: f64,
    battery_grid: UniformGrid,
    load_bins: usize,
    temp_bins: usize,
) -> usize {
    let t = s % temp_bins;
    let bu = s / temp_bins;
    let b = bu / load_bins;
    let u = bu % load_bins;
    let soc = battery_grid.center(b);
    let soc_next = match AttackAction::from_index(a) {
        AttackAction::Charge => (soc + charge_soc).min(1.0),
        AttackAction::Attack => (soc - attack_soc).max(0.0),
        AttackAction::Standby => soc,
    };
    (battery_grid.index(soc_next) * load_bins + u) * temp_bins + t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(soc: f64, kw: f64, capping: bool) -> Observation {
        Observation {
            slot: 0,
            battery_soc: soc,
            battery_stored: Energy::from_kilowatt_hours(0.2 * soc),
            estimated_total: Power::from_kilowatts(kw),
            inlet: Temperature::from_celsius(27.0),
            capping,
        }
    }

    #[test]
    fn myopic_attacks_only_above_threshold_with_energy() {
        let mut p = MyopicPolicy::new(Power::from_kilowatts(7.4));
        assert_eq!(p.decide(&obs(1.0, 7.5, false)), AttackAction::Attack);
        assert_eq!(p.decide(&obs(1.0, 7.0, false)), AttackAction::Standby);
        assert_eq!(p.decide(&obs(0.0, 7.9, false)), AttackAction::Charge);
        assert_eq!(p.decide(&obs(1.0, 7.9, true)), AttackAction::Standby);
    }

    #[test]
    fn myopic_recharges_when_depleted() {
        let mut p = MyopicPolicy::new(Power::from_kilowatts(7.4));
        assert_eq!(p.decide(&obs(0.5, 6.0, false)), AttackAction::Charge);
        assert_eq!(p.decide(&obs(1.0, 6.0, false)), AttackAction::Standby);
    }

    #[test]
    fn random_respects_probability_extremes() {
        let mut never = RandomPolicy::new(
            0.0,
            Power::from_kilowatts(1.0),
            Duration::from_minutes(1.0),
            1,
        );
        let mut always = RandomPolicy::new(
            1.0,
            Power::from_kilowatts(1.0),
            Duration::from_minutes(1.0),
            1,
        );
        for _ in 0..50 {
            assert_ne!(never.decide(&obs(1.0, 7.9, false)), AttackAction::Attack);
            assert_eq!(always.decide(&obs(1.0, 3.0, false)), AttackAction::Attack);
        }
    }

    #[test]
    fn one_shot_waits_then_commits() {
        let mut p = OneShotPolicy::new(Power::from_kilowatts(7.4));
        assert_eq!(p.decide(&obs(1.0, 6.0, false)), AttackAction::Standby);
        assert!(!p.triggered());
        assert_eq!(p.decide(&obs(1.0, 7.5, false)), AttackAction::Attack);
        assert!(p.triggered());
        // Committed: attacks straight through capping until drained.
        assert_eq!(p.decide(&obs(0.5, 2.0, true)), AttackAction::Attack);
        assert_eq!(p.decide(&obs(0.0, 2.0, true)), AttackAction::Standby);
    }

    #[test]
    fn one_shot_charges_before_trigger() {
        let mut p = OneShotPolicy::new(Power::from_kilowatts(7.4));
        assert_eq!(p.decide(&obs(0.3, 7.9, false)), AttackAction::Charge);
        assert!(!p.triggered(), "must not fire with a partial battery");
    }

    #[test]
    fn foresighted_complies_with_capping() {
        let mut p = ForesightedPolicy::paper_default(14.0, 3);
        assert_eq!(p.decide(&obs(1.0, 8.0, true)), AttackAction::Standby);
    }

    #[test]
    fn foresighted_never_attacks_with_empty_battery() {
        let mut p = ForesightedPolicy::paper_default(14.0, 3);
        for kw in [6.0, 7.0, 8.0] {
            assert_ne!(p.decide(&obs(0.0, kw, false)), AttackAction::Attack);
        }
    }

    #[test]
    fn foresighted_learns_to_attack_high_load() {
        // Hand-feed transitions: attacking at high load heats the room
        // (reward ≫ cost), attacking at low load does not (reward −1).
        let mut p = ForesightedPolicy::paper_default(14.0, 5);
        p.set_learning(true);
        let hot = Temperature::from_celsius(33.0);
        let cool = Temperature::from_celsius(27.0);
        for k in 0..4000u64 {
            let high_load = k % 2 == 0;
            let kw = if high_load { 7.8 } else { 5.0 };
            let o = Observation {
                slot: k,
                ..obs(1.0, kw, false)
            };
            let a = p.decide(&o);
            let inlet = if a == AttackAction::Attack && high_load {
                hot
            } else {
                cool
            };
            let t = Transition {
                observation: o,
                action: a,
                inlet,
                next_battery_soc: if a == AttackAction::Attack { 0.9 } else { 1.0 },
                next_battery_stored: Energy::from_kilowatt_hours(0.18),
                next_estimated_total: Power::from_kilowatts(if high_load { 5.0 } else { 7.8 }),
                next_capping: false,
                day: k / 1440,
            };
            p.learn(&t);
        }
        p.set_learning(false);
        assert_eq!(
            p.decide(&obs(1.0, 7.8, false)),
            AttackAction::Attack,
            "full battery + high load must attack"
        );
        assert_ne!(
            p.decide(&obs(1.0, 5.0, false)),
            AttackAction::Attack,
            "low load must not attack"
        );
    }

    #[test]
    fn policy_matrix_dimensions() {
        let p = ForesightedPolicy::paper_default(9.0, 1);
        let m = p.policy_matrix();
        assert_eq!(m.len(), ForesightedPolicy::BATTERY_BINS);
        assert_eq!(m[0].len(), ForesightedPolicy::LOAD_BINS);
        assert_eq!(p.load_bin_centers_kw().len(), ForesightedPolicy::LOAD_BINS);
        assert_eq!(
            p.battery_bin_centers().len(),
            ForesightedPolicy::BATTERY_BINS
        );
    }

    #[test]
    fn campaign_sustains_recharges_and_relaunches() {
        // Drive the policy during its teacher phase (day 1) through a full
        // campaign cycle: launch at high load with a full battery, keep
        // attacking as the battery drains below the launch bar, switch to
        // recharging when it cannot sustain a slot, relaunch once the bar
        // is regained, and stand down when the load collapses.
        let mut p = ForesightedPolicy::paper_default(14.0, 1);
        assert_eq!(p.decide(&obs(1.0, 7.8, false)), AttackAction::Attack);
        // Mid-campaign, below the launch bar but above one slot: continue.
        assert_eq!(p.decide(&obs(0.3, 7.8, false)), AttackAction::Attack);
        // Battery cannot sustain a slot: recharge within the campaign.
        assert_eq!(p.decide(&obs(0.005, 7.8, false)), AttackAction::Charge);
        // Still below the bar: keep charging even though load is high.
        assert_eq!(p.decide(&obs(0.4, 7.8, false)), AttackAction::Charge);
        // Bar regained and load held: relaunch.
        assert_eq!(p.decide(&obs(0.8, 7.8, false)), AttackAction::Attack);
        // Load collapses: the campaign ends (teacher then charges).
        assert_ne!(p.decide(&obs(0.6, 5.0, false)), AttackAction::Attack);
    }

    #[test]
    fn campaign_stops_at_the_emergency() {
        let mut p = ForesightedPolicy::paper_default(14.0, 1);
        assert_eq!(p.decide(&obs(1.0, 7.8, false)), AttackAction::Attack);
        // Operator declares the emergency: comply immediately…
        assert_eq!(p.decide(&obs(0.5, 7.8, true)), AttackAction::Standby);
        // …and use the post-capping window to recharge, not re-attack.
        assert_eq!(p.decide(&obs(0.5, 7.8, false)), AttackAction::Charge);
    }

    #[test]
    fn launch_requires_the_battery_bar() {
        // Day 1 teacher: high load but battery below the launch bar → no
        // fresh launch (only campaigns in progress may continue there).
        let mut p = ForesightedPolicy::paper_default(14.0, 1);
        assert_eq!(p.decide(&obs(0.4, 7.9, false)), AttackAction::Charge);
    }

    #[test]
    fn action_index_round_trip() {
        for a in [
            AttackAction::Charge,
            AttackAction::Attack,
            AttackAction::Standby,
        ] {
            assert_eq!(AttackAction::from_index(a.index()), a);
        }
    }
}
