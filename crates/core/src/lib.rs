//! Edge-colocation thermal-attack simulator — the paper's primary
//! contribution, assembled from the workspace substrates.
//!
//! This crate wires together the physical models (power delivery, cooling,
//! batteries, the voltage side channel, tenant workloads) into a slotted
//! simulator of the paper's 8 kW edge colocation, implements all four attack
//! strategies — [`RandomPolicy`], [`MyopicPolicy`], the reinforcement-
//! learning [`ForesightedPolicy`], and [`OneShotPolicy`] — and collects the
//! metrics the paper evaluates: thermal-emergency time, average inlet-
//! temperature increase, attack time, latency degradation, and costs.
//!
//! # The simulated minute
//!
//! Each 1-minute slot proceeds as the paper describes:
//!
//! 1. benign tenants draw power per their trace (capped during a thermal
//!    emergency);
//! 2. the attacker estimates the aggregate load through the voltage side
//!    channel, then charges, attacks (runs its servers past subscription by
//!    discharging built-in batteries), or stands by;
//! 3. the PDU meters *metered* draws — battery discharge is invisible —
//!    while the zone thermal model integrates *actual* heat;
//! 4. the operator's [`hbm_power::EmergencyProtocol`] watches the inlet
//!    temperature and declares emergencies (power capping) or an outage.
//!
//! # Examples
//!
//! ```
//! use hbm_core::{ColoConfig, MyopicPolicy, Simulation};
//! use hbm_units::Power;
//!
//! let config = ColoConfig::paper_default();
//! let policy = MyopicPolicy::new(Power::from_kilowatts(7.4));
//! let mut sim = Simulation::new(config, Box::new(policy), 42);
//! let report = sim.run(2 * 24 * 60); // two simulated days
//! assert!(report.metrics.attack_slots > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attacker;
mod batch;
mod config;
mod cost;
mod fleet;
mod metrics;
pub mod scenario;
mod sim;
mod state;
mod tree;

pub use attacker::{
    AttackAction, AttackPolicy, ForesightedPolicy, Learner, MyopicPolicy, Observation,
    OneShotPolicy, RandomPolicy, Transition,
};
pub use batch::{run_sharded, run_sharded_recorded, BatchRun, BatchRunRecorded, BatchSim};
pub use config::ColoConfig;
pub use cost::{CostModel, CostReport};
pub use fleet::{coordinated_one_shot, Fleet, FleetReport};
pub use metrics::Metrics;
pub use scenario::{install_thermal_tier, installed_thermal_tier, Perturbation, Scenario};
pub use sim::{SimReport, Simulation, SlotRecord};
pub use state::{Snapshot, SNAPSHOT_SCHEMA};
pub use tree::{BranchOutcome, StateTree};

/// The crate version, for run manifests.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
