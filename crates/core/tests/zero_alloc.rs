//! Proof that the simulator's steady loop performs zero heap allocations
//! per slot.
//!
//! A counting wrapper around the system allocator measures `Simulation::step`
//! after construction and warm-up. This lives in its own integration-test
//! binary with a single `#[test]`, because the counter is process-global:
//! any concurrently running test would pollute it.
//!
//! The library forbids `unsafe`; this test crate needs it only to implement
//! `GlobalAlloc` for the counting wrapper.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hbm_core::{BatchSim, ColoConfig, ForesightedPolicy, MyopicPolicy, Simulation};
use hbm_units::Power;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to the system allocator unchanged; the
// only addition is a relaxed atomic increment, which allocates nothing.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Steps `sim` for `slots` slots and returns how many heap allocations the
/// stepping performed.
fn allocations_during(sim: &mut Simulation, slots: u64) -> u64 {
    let before = allocations();
    for _ in 0..slots {
        let record = sim.step();
        std::hint::black_box(&record);
    }
    allocations() - before
}

#[test]
fn steady_loop_allocates_nothing() {
    let config = ColoConfig::paper_default().with_trace_len(1440);

    // The learning attacker exercises the most machinery per slot: side
    // channel, EMA filter, campaign bookkeeping, batch Q-learning update,
    // zone model, protocol, metrics. Warm-up runs through the teacher
    // phase and several emergency/recovery cycles first.
    let policy = ForesightedPolicy::paper_default(14.0, 1);
    let mut sim = Simulation::new(config.clone(), Box::new(policy), 1);
    sim.warmup(10 * 1440);
    let with_learning = allocations_during(&mut sim, 1440);
    assert_eq!(
        with_learning, 0,
        "foresighted steady loop must not touch the heap (got {with_learning} allocations over a day)"
    );

    // The myopic policy covers the attack-triggering non-learning path.
    let policy = MyopicPolicy::new(Power::from_kilowatts(7.4));
    let mut sim = Simulation::new(config.clone(), Box::new(policy), 2);
    sim.warmup(2 * 1440);
    let myopic = allocations_during(&mut sim, 1440);
    assert_eq!(
        myopic, 0,
        "myopic steady loop must not touch the heap (got {myopic} allocations over a day)"
    );

    // The batch engine's steady loop must be just as clean: all per-slot
    // scratch is preallocated at construction, so advancing a whole batch
    // (learning and non-learning lanes, across emergency episodes) performs
    // zero allocations per slot.
    let sims: Vec<Simulation> = (0..8)
        .map(|i| {
            let policy: Box<dyn hbm_core::AttackPolicy> = if i % 2 == 0 {
                Box::new(MyopicPolicy::new(Power::from_kilowatts(7.4)))
            } else {
                Box::new(ForesightedPolicy::paper_default(14.0, i))
            };
            Simulation::new(config.clone(), policy, i)
        })
        .collect();
    let mut batch = BatchSim::new(sims);
    for _ in 0..2 * 1440 {
        batch.step_all(); // warm-up: Q-tables, emergency episodes, filters
    }
    let before = allocations();
    for _ in 0..1440 {
        let down = batch.step_all();
        std::hint::black_box(down);
    }
    let batched = allocations() - before;
    assert_eq!(
        batched, 0,
        "batch steady loop must not touch the heap (got {batched} allocations over a day)"
    );

    // The devirtualized learning fleet (all-foresighted batch): packed
    // Q-table lanes, schedule column sweeps, per-lane campaign/RNG columns —
    // all preallocated at construction. Teacher disabled on most lanes so
    // the ε-greedy and packed greedy-scan paths run, not just the teacher's.
    let sims: Vec<Simulation> = (0..4)
        .map(|i| {
            let mut policy = ForesightedPolicy::paper_default(9.0 + 5.0 * i as f64, 40 + i);
            if i > 0 {
                policy.set_teacher(Power::from_kilowatts(7.56), 0);
            }
            Simulation::new(config.clone(), Box::new(policy), 40 + i)
        })
        .collect();
    let mut batch = BatchSim::new(sims);
    assert!(batch.learning_devirtualized());
    for _ in 0..2 * 1440 {
        batch.step_all(); // warm-up: Q-tables, campaigns, emergency episodes
    }
    let before = allocations();
    for _ in 0..1440 {
        let down = batch.step_all();
        std::hint::black_box(down);
    }
    let learning_batched = allocations() - before;
    assert_eq!(
        learning_batched, 0,
        "batched learning steady loop must not touch the heap (got {learning_batched} allocations over a day)"
    );
}
