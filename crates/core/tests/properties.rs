//! Property-based tests of the end-to-end simulator invariants.
//!
//! These run short horizons with randomized policies and seeds and assert
//! the physical/accounting invariants that must hold for *any* attacker
//! behaviour.

use hbm_core::{ColoConfig, MyopicPolicy, RandomPolicy, Simulation};
use hbm_units::{Power, Temperature};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulator_invariants_hold_for_any_myopic_threshold(
        threshold in 6.0..9.0f64,
        seed in 0u64..50,
    ) {
        let config = ColoConfig::paper_default().with_trace_len(2 * 1440);
        let policy = MyopicPolicy::new(Power::from_kilowatts(threshold));
        let mut sim = Simulation::new(config.clone(), Box::new(policy), seed);
        let (report, records) = sim.run_recorded(2 * 1440);

        for r in &records {
            // Metered power respects the PDU capacity.
            prop_assert!(r.metered_total <= config.capacity + Power::from_watts(1e-6));
            // Battery state of charge stays physical.
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r.battery_soc));
            // Temperatures stay physical.
            prop_assert!(r.inlet.is_finite());
            prop_assert!(r.inlet >= config.cooling.supply);
            // Behind-the-meter gap only ever comes from the battery.
            let gap = r.actual_total - r.metered_total;
            prop_assert!(gap <= config.attack_load + Power::from_watts(1.0));
        }
        // Metrics are internally consistent.
        let m = &report.metrics;
        prop_assert!(m.emergency_slots <= m.slots);
        prop_assert!(m.attack_slots <= m.slots);
        prop_assert_eq!(m.slots, 2 * 1440);
    }

    #[test]
    fn simulator_invariants_hold_for_any_random_probability(
        p in 0.0..=1.0f64,
        seed in 0u64..50,
    ) {
        let config = ColoConfig::paper_default().with_trace_len(1440);
        let policy = RandomPolicy::new(p, config.attack_load, config.slot, seed);
        let mut sim = Simulation::new(config.clone(), Box::new(policy), seed);
        let (report, records) = sim.run_recorded(1440);
        // No random schedule of 1 kW attacks may cause an outage.
        prop_assert_eq!(report.metrics.outage_events, 0);
        for r in &records {
            prop_assert!(r.inlet < Temperature::from_celsius(45.0));
        }
        // Attack accounting matches the records.
        let recorded_attacks =
            records.iter().filter(|r| r.attack_load > Power::ZERO).count() as u64;
        prop_assert_eq!(report.metrics.attack_slots, recorded_attacks);
    }

    #[test]
    fn determinism_across_reconstruction(seed in 0u64..30) {
        let config = ColoConfig::paper_default().with_trace_len(1440);
        let run = || {
            let policy = MyopicPolicy::new(Power::from_kilowatts(7.4));
            let mut sim = Simulation::new(config.clone(), Box::new(policy), seed);
            sim.run(1440).metrics
        };
        prop_assert_eq!(run(), run());
    }
}
