//! The batch engine's determinism contract: every lane of a [`BatchSim`]
//! produces byte-identical records, metrics, and reports to running the
//! same [`Simulation`] alone, and the sharded runner is thread-count
//! invariant.

use hbm_battery::BatterySpec;
use hbm_core::{
    run_sharded, BatchSim, ColoConfig, ForesightedPolicy, MyopicPolicy, OneShotPolicy,
    RandomPolicy, SimReport, Simulation, SlotRecord,
};
use hbm_units::Power;

/// A policy/config mix covering every slot-body path: attacking and quiet
/// myopic, random, the learning foresighted attacker, and a one-shot
/// scenario that drives its site through outage downtime.
fn scenarios() -> Vec<Simulation> {
    let base = ColoConfig::paper_default().with_trace_len(7 * 1440);
    let mut outage = base.clone();
    outage.battery = BatterySpec::one_shot();
    outage.attack_load = Power::from_kilowatts(3.0);
    vec![
        Simulation::new(
            base.clone(),
            Box::new(MyopicPolicy::new(Power::from_kilowatts(7.4))),
            1,
        ),
        Simulation::new(
            base.clone(),
            Box::new(MyopicPolicy::new(Power::from_kilowatts(99.0))),
            2,
        ),
        Simulation::new(
            base.clone(),
            Box::new(RandomPolicy::new(0.08, base.attack_load, base.slot, 11)),
            3,
        ),
        Simulation::new(
            base.clone(),
            Box::new(ForesightedPolicy::paper_default(14.0, 4)),
            4,
        ),
        Simulation::new(
            outage,
            Box::new(OneShotPolicy::new(Power::from_kilowatts(7.6))),
            1,
        ),
    ]
}

fn sequential_reference(slots: u64) -> Vec<(SimReport, Vec<SlotRecord>)> {
    scenarios()
        .into_iter()
        .map(|mut sim| sim.run_recorded(slots))
        .collect()
}

#[test]
fn batch_matches_sequential_slot_for_slot() {
    const SLOTS: u64 = 3 * 1440;
    let reference = sequential_reference(SLOTS);
    assert!(
        reference.last().unwrap().0.metrics.outage_slots > 0,
        "the one-shot lane must exercise the outage path"
    );

    let mut batch = BatchSim::new(scenarios());
    for k in 0..SLOTS {
        batch.step_all();
        for (i, (_, records)) in reference.iter().enumerate() {
            let want = records[k as usize];
            let got = batch.records()[i];
            assert_eq!(got, want, "lane {i} diverged at slot {k}");
            // PartialEq on f64 admits -0.0 == 0.0; pin the hot physics
            // channels down to the bit.
            assert_eq!(
                got.inlet.as_celsius().to_bits(),
                want.inlet.as_celsius().to_bits(),
                "lane {i} inlet bits diverged at slot {k}"
            );
            assert_eq!(
                got.estimated_total.as_kilowatts().to_bits(),
                want.estimated_total.as_kilowatts().to_bits(),
                "lane {i} estimate bits diverged at slot {k}"
            );
        }
    }

    let reports = batch.take_reports();
    for (i, (want, _)) in reference.iter().enumerate() {
        assert_eq!(reports[i], want.clone(), "lane {i} report diverged");
    }
}

/// A batch whose every lane is a [`MyopicPolicy`] takes the devirtualized
/// decide fast path (the mixed batch above never does), so the fleet-shaped
/// case needs its own slot-for-slot check. Thresholds straddle the trace so
/// attacking, charging, and idle lanes are all present.
#[test]
fn all_myopic_batch_matches_sequential() {
    const SLOTS: u64 = 2 * 1440;
    let base = ColoConfig::paper_default().with_trace_len(7 * 1440);
    let make = || -> Vec<Simulation> {
        [6.8, 7.4, 99.0]
            .iter()
            .enumerate()
            .map(|(i, &kw)| {
                Simulation::new(
                    base.clone(),
                    Box::new(MyopicPolicy::new(Power::from_kilowatts(kw))),
                    1 + i as u64,
                )
            })
            .collect()
    };

    let reference: Vec<(SimReport, Vec<SlotRecord>)> = make()
        .into_iter()
        .map(|mut sim| sim.run_recorded(SLOTS))
        .collect();
    assert!(
        reference.iter().any(|(r, _)| r.metrics.attack_slots > 0),
        "at least one myopic lane must actually attack"
    );

    let mut batch = BatchSim::new(make());
    for k in 0..SLOTS {
        batch.step_all();
        for (i, (_, records)) in reference.iter().enumerate() {
            assert_eq!(
                batch.records()[i],
                records[k as usize],
                "myopic lane {i} diverged at slot {k}"
            );
        }
    }
    let reports = batch.take_reports();
    for (i, (want, _)) in reference.iter().enumerate() {
        assert_eq!(reports[i], want.clone(), "myopic lane {i} report diverged");
    }
}

/// Builds an all-foresighted fleet covering every decide path: a lane still
/// in its teacher phase, lanes past it (teacher disabled, so ε-greedy
/// exploration and the packed greedy scan run from slot 0), and a frozen
/// evaluation lane (no learning, no exploration). All lanes use the paper's
/// batch learner, so the fleet devirtualizes onto packed Q-table lanes.
fn foresighted_fleet() -> Vec<Simulation> {
    let base = ColoConfig::paper_default().with_trace_len(7 * 1440);
    let mut sims = Vec::new();
    for (i, (w, teacher, learning)) in [
        (14.0, true, true),
        (9.0, false, true),
        (22.0, false, true),
        (0.0, false, false),
    ]
    .into_iter()
    .enumerate()
    {
        let mut policy = ForesightedPolicy::paper_default(w, 4 + i as u64);
        if !teacher {
            policy.set_teacher(Power::from_kilowatts(7.56), 0);
        }
        policy.set_learning(learning);
        sims.push(Simulation::new(base.clone(), Box::new(policy), 4 + i as u64));
    }
    sims
}

/// A batch whose every lane is a [`ForesightedPolicy`] devirtualizes onto
/// packed Q-table lanes and schedule column sweeps; the mixed batch above
/// never does, so the learning fleet needs its own slot-for-slot check.
#[test]
fn all_foresighted_batch_matches_sequential() {
    const SLOTS: u64 = 3 * 1440;
    let reference: Vec<(SimReport, Vec<SlotRecord>)> = foresighted_fleet()
        .into_iter()
        .map(|mut sim| sim.run_recorded(SLOTS))
        .collect();
    assert!(
        reference.iter().any(|(r, _)| r.metrics.attack_slots > 0),
        "at least one foresighted lane must actually attack"
    );

    let mut batch = BatchSim::new(foresighted_fleet());
    assert!(
        batch.learning_devirtualized(),
        "an all-foresighted batch-learner fleet must take the packed fast path"
    );
    for k in 0..SLOTS {
        batch.step_all();
        for (i, (_, records)) in reference.iter().enumerate() {
            let want = records[k as usize];
            let got = batch.records()[i];
            assert_eq!(got, want, "foresighted lane {i} diverged at slot {k}");
            assert_eq!(
                got.estimated_total.as_kilowatts().to_bits(),
                want.estimated_total.as_kilowatts().to_bits(),
                "foresighted lane {i} estimate bits diverged at slot {k}"
            );
        }
    }
    let reports = batch.take_reports();
    for (i, (want, _)) in reference.iter().enumerate() {
        assert_eq!(
            reports[i],
            want.clone(),
            "foresighted lane {i} report diverged"
        );
    }
}

/// Same contract for the classic-Q ablation learner: all-standard fleets
/// pack onto `StandardLanes` (mixing learner kinds falls back to virtual
/// dispatch, checked here too).
#[test]
fn all_foresighted_standard_q_batch_matches_sequential() {
    const SLOTS: u64 = 2 * 1440;
    let base = ColoConfig::paper_default().with_trace_len(7 * 1440);
    let make = || -> Vec<Simulation> {
        [9.0, 14.0]
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let mut policy = ForesightedPolicy::paper_default(w, 21 + i as u64);
                policy.set_teacher(Power::from_kilowatts(7.56), 0);
                let policy = policy.with_standard_q();
                Simulation::new(base.clone(), Box::new(policy), 21 + i as u64)
            })
            .collect()
    };

    let reference: Vec<(SimReport, Vec<SlotRecord>)> = make()
        .into_iter()
        .map(|mut sim| sim.run_recorded(SLOTS))
        .collect();

    let mut batch = BatchSim::new(make());
    assert!(
        batch.learning_devirtualized(),
        "an all-standard-Q fleet must take the packed fast path"
    );
    for k in 0..SLOTS {
        batch.step_all();
        for (i, (_, records)) in reference.iter().enumerate() {
            assert_eq!(
                batch.records()[i],
                records[k as usize],
                "standard-Q lane {i} diverged at slot {k}"
            );
        }
    }
    let reports = batch.take_reports();
    for (i, (want, _)) in reference.iter().enumerate() {
        assert_eq!(reports[i], want.clone(), "standard-Q lane {i} report diverged");
    }

    // Mixed learner kinds cannot share one packed matrix; the batch must
    // fall back to virtual dispatch (correctness is covered by the mixed
    // batch tests above).
    let mut mixed = make();
    mixed.push(Simulation::new(
        base,
        Box::new(ForesightedPolicy::paper_default(14.0, 30)),
        30,
    ));
    assert!(!BatchSim::new(mixed).learning_devirtualized());
}

/// The packed learner/RNG/campaign state is authoritative while batched;
/// `into_sims` must flow it back so scalar stepping continues bit-exactly.
#[test]
fn foresighted_batch_hands_back_resumable_sims() {
    const HALF: u64 = 1440;
    let full: Vec<SimReport> = foresighted_fleet()
        .into_iter()
        .map(|mut sim| sim.run(2 * HALF))
        .collect();

    let mut batch = BatchSim::new(foresighted_fleet());
    assert!(batch.learning_devirtualized());
    batch.run(HALF);
    let resumed: Vec<SimReport> = batch
        .into_sims()
        .iter_mut()
        .map(|sim| sim.run(HALF))
        .collect();
    assert_eq!(
        resumed, full,
        "scalar stepping must continue bit-exactly from the packed learning state"
    );
}

#[test]
fn sharded_foresighted_run_is_thread_count_invariant() {
    const SLOTS: u64 = 2 * 1440;
    let reports_ref: Vec<SimReport> = foresighted_fleet()
        .into_iter()
        .map(|mut sim| sim.run(SLOTS))
        .collect();

    // 1 = fully sequential; 3 splits the 4 lanes unevenly; 16 grants more
    // workers than lanes. All three must be byte-identical.
    for threads in [1usize, 3, 16] {
        hbm_par::configure_threads(threads);
        let run = run_sharded(foresighted_fleet(), SLOTS);
        assert_eq!(
            run.reports, reports_ref,
            "foresighted reports diverged at {threads} threads"
        );
    }
    hbm_par::configure_threads(1);
}

#[test]
fn batch_hands_back_resumable_sims() {
    const HALF: u64 = 1440;
    let full: Vec<SimReport> = scenarios()
        .into_iter()
        .map(|mut sim| sim.run(2 * HALF))
        .collect();

    let mut batch = BatchSim::new(scenarios());
    batch.run(HALF);
    let resumed: Vec<SimReport> = batch
        .into_sims()
        .iter_mut()
        .map(|sim| sim.run(HALF))
        .collect();
    assert_eq!(
        resumed, full,
        "scalar stepping must continue bit-exactly from where the batch left off"
    );
}

#[test]
fn sharded_run_is_thread_count_invariant() {
    const SLOTS: u64 = 2 * 1440;
    let reference = sequential_reference(SLOTS);
    let reports_ref: Vec<SimReport> = reference.iter().map(|(r, _)| r.clone()).collect();
    let down_ref: Vec<u32> = (0..SLOTS as usize)
        .map(|k| {
            reference
                .iter()
                .filter(|(_, records)| records[k].outage)
                .count() as u32
        })
        .collect();

    // 1 = fully sequential; 4 splits the 5 lanes unevenly; 16 grants more
    // workers than lanes. All three must be byte-identical.
    for threads in [1usize, 4, 16] {
        hbm_par::configure_threads(threads);
        let run = run_sharded(scenarios(), SLOTS);
        assert_eq!(
            run.reports, reports_ref,
            "reports diverged at {threads} threads"
        );
        assert_eq!(
            run.down_per_slot, down_ref,
            "down counts diverged at {threads} threads"
        );
        assert_eq!(run.sims.len(), reports_ref.len());
    }
    hbm_par::configure_threads(1);
}
