//! Checkpoint schema stability and bit-exact restore.
//!
//! The contract under test: `Simulation::snapshot_json` at slot `t`,
//! restored into a simulation freshly rebuilt from the same [`Scenario`],
//! continues **bit-identically** to the uninterrupted run — slot records,
//! metrics, histogram, everything — including across mid-run
//! perturbations and repeated snapshot/restore cycles. The serve layer's
//! kill-and-restore test extends the same contract across a daemon
//! restart; this file proves the core mechanism.

use hbm_core::{ColoConfig, OneShotPolicy, Perturbation, Scenario, Simulation, Snapshot};
use hbm_units::Power;
use proptest::prelude::*;

fn short(policy: &str, seed: u64) -> Scenario {
    let mut s = Scenario::new(policy);
    s.days = 2;
    s.warmup_days = 0;
    s.seed = seed;
    s
}

/// Steps both simulations `slots` times asserting record-for-record
/// equality, then asserts the accumulated metrics match exactly.
fn assert_lockstep(reference: &mut Simulation, restored: &mut Simulation, slots: u64) {
    for k in 0..slots {
        let a = reference.step();
        let b = restored.step();
        assert_eq!(a, b, "slot {k} diverged after restore");
    }
    assert_eq!(reference.metrics(), restored.metrics());
}

#[test]
fn restore_continues_bit_identically_for_every_policy() {
    for policy in ["random", "myopic", "foresighted"] {
        let scenario = short(policy, 9);
        let (mut reference, _) = scenario.build_sim().unwrap();
        reference.run(500);
        let snapshot = reference.snapshot_json();

        let (mut restored, _) = scenario.build_sim().unwrap();
        restored.restore_from_json(&snapshot).unwrap();
        assert_lockstep(&mut reference, &mut restored, 1000);
    }
}

#[test]
fn one_shot_policy_round_trips_through_the_trigger() {
    // One-shot is not a scenario policy; rebuild it by hand the way an
    // embedding would. Snapshot *after* the trigger latch flips to prove
    // the latch travels with the checkpoint.
    let build = || {
        let mut config = ColoConfig::paper_default().with_trace_len(3 * 1440);
        config.battery = hbm_battery::BatterySpec::one_shot();
        config.attack_load = Power::from_kilowatts(3.0);
        let policy = OneShotPolicy::new(Power::from_kilowatts(7.6));
        Simulation::new(config, Box::new(policy), 1)
    };
    let mut reference = build();
    reference.run(1440);
    let snapshot = reference.snapshot_json();
    let mut restored = build();
    restored.restore_from_json(&snapshot).unwrap();
    assert_lockstep(&mut reference, &mut restored, 1440);
}

#[test]
fn perturbed_experiment_restores_bit_identically() {
    // The experiment platform's perturb path: snapshot, rebuild from the
    // *perturbed* scenario, restore, continue. A later crash-restore
    // repeats rebuild+restore from the same effective scenario and must
    // land on the same trajectory.
    let base = short("myopic", 4);
    let (mut sim, _) = base.build_sim().unwrap();
    sim.run(700);

    let perturb = Perturbation {
        threshold_c: Some(30.5),
        attack_load_kw: Some(1.4),
        ..Perturbation::default()
    };
    let effective = perturb.apply(&base);
    let snap = sim.snapshot_json();
    let (mut perturbed, _) = effective.build_sim().unwrap();
    perturbed.restore_from_json(&snap).unwrap();
    perturbed.run(300);

    // Crash after 300 perturbed slots: rebuild from the effective scenario.
    let snap2 = perturbed.snapshot_json();
    let (mut recovered, _) = effective.build_sim().unwrap();
    recovered.restore_from_json(&snap2).unwrap();
    assert_lockstep(&mut perturbed, &mut recovered, 800);
}

#[test]
fn shrinking_the_battery_clamps_stored_energy_deterministically() {
    let base = short("myopic", 11);
    let (mut sim, _) = base.build_sim().unwrap();
    sim.run(200);
    let perturb = Perturbation {
        battery_kwh: Some(0.05),
        ..Perturbation::default()
    };
    let effective = perturb.apply(&base);
    let snap = sim.snapshot_json();
    let (mut a, _) = effective.build_sim().unwrap();
    a.restore_from_json(&snap).unwrap();
    assert!(a.battery_soc() <= 1.0 + 1e-12);
    let (mut b, _) = effective.build_sim().unwrap();
    b.restore_from_json(&snap).unwrap();
    assert_lockstep(&mut a, &mut b, 400);
}

#[test]
fn golden_checkpoint_fixture_stays_stable() {
    // Schema freeze: the exact checkpoint line for a pinned scenario. If
    // this test fails, the checkpoint layout changed — bump
    // `hbm_core::SNAPSHOT_SCHEMA` and regenerate the fixture (see the
    // fixture header comment for the command).
    let scenario = short("myopic", 7);
    let (mut sim, _) = scenario.build_sim().unwrap();
    sim.run(120);
    if std::env::var_os("REGEN_FIXTURES").is_some() {
        let header = "# Golden hbm-checkpoint-v1 line: myopic, days=2, warmup_days=0, seed=7, after 120 slots.\n# Regenerate with: REGEN_FIXTURES=1 cargo test -p hbm-core --test checkpoint golden\n";
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/checkpoint_v1.json"
        );
        std::fs::write(path, format!("{header}{}\n", sim.snapshot_json())).unwrap();
    }
    let fixture = include_str!("fixtures/checkpoint_v1.json");
    let expected = fixture
        .lines()
        .find(|l| !l.starts_with('#') && !l.trim().is_empty())
        .expect("fixture must hold one checkpoint line");
    assert_eq!(
        sim.snapshot_json(),
        expected,
        "checkpoint schema drifted from the pinned v1 fixture"
    );

    // And the pinned line still restores and steps.
    let (mut restored, _) = scenario.build_sim().unwrap();
    restored.restore_from_json(expected).unwrap();
    let mut reference = sim;
    assert_lockstep(&mut reference, &mut restored, 240);
}

#[test]
fn restore_rejects_mismatches_loudly() {
    let myopic = short("myopic", 1);
    let random = short("random", 1);
    let (mut a, _) = myopic.build_sim().unwrap();
    a.run(10);
    let snap = a.snapshot_json();

    // Wrong policy.
    let (mut b, _) = random.build_sim().unwrap();
    let err = b.restore_from_json(&snap).unwrap_err();
    assert!(err.contains("policy"), "got: {err}");

    // Wrong schema tag.
    let bad = snap.replace("hbm-checkpoint-v1", "hbm-checkpoint-v0");
    let (mut c, _) = myopic.build_sim().unwrap();
    assert!(c.restore_from_json(&bad).unwrap_err().contains("schema"));

    // Malformed JSON and missing fields.
    let (mut d, _) = myopic.build_sim().unwrap();
    assert!(d.restore_from_json("{not json").is_err());
    assert!(d
        .restore_from_json("{\"schema\":\"hbm-checkpoint-v1\",\"policy\":\"myopic\"}")
        .unwrap_err()
        .contains("missing"));
}

#[test]
fn foresighted_q_tables_survive_the_round_trip() {
    // The learner state is the bulkiest part of the checkpoint; check the
    // tables transfer exactly (not merely that stepping agrees).
    let scenario = short("foresighted", 3);
    let (mut sim, _) = scenario.build_sim().unwrap();
    sim.run(2000);
    let snap = sim.snapshot_json();
    let (mut restored, _) = scenario.build_sim().unwrap();
    restored.restore_from_json(&snap).unwrap();
    assert_eq!(sim.snapshot_json(), restored.snapshot_json());
}

#[test]
fn fork_continues_bit_identically_and_independently() {
    for policy in ["random", "myopic", "foresighted"] {
        let scenario = short(policy, 5);
        let (mut sim, _) = scenario.build_sim().unwrap();
        sim.run(400);
        let mut fork = sim.fork();
        assert_lockstep(&mut sim, &mut fork, 800);
        // Independence: advancing the fork must not disturb the original.
        let before = sim.snapshot_json();
        fork.run(100);
        assert_eq!(sim.snapshot_json(), before);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Binary `snapshot()`/`restore()` is bit-identical to the
    /// `snapshot_json()`/`restore_from_json()` round trip: the snapshot
    /// serializes to the exact checkpoint line, the line parses back to
    /// the exact snapshot, and the two restore paths land on the same
    /// state and step identically — across policies, seeds, split points,
    /// and mid-run perturbations.
    #[test]
    fn binary_snapshot_matches_json_round_trip(
        policy_idx in 0usize..3,
        seed in 0u64..40,
        split in 50u64..1200,
        k in 50u64..400,
        perturb_kind in 0usize..4,
        threshold in 29.0..34.0f64,
        load_kw in 0.8..1.6f64,
    ) {
        let policy = ["random", "myopic", "foresighted"][policy_idx];
        let base = short(policy, seed);
        let (mut reference, _) = base.build_sim().unwrap();
        reference.run(split);

        let snap = reference.snapshot();
        let line = reference.snapshot_json();
        prop_assert_eq!(snap.to_json(), line.clone(), "binary→JSON drifted");
        let reparsed = Snapshot::from_json(&line).unwrap();
        prop_assert_eq!(&reparsed, &snap, "JSON→binary drifted");

        let perturbation = Perturbation {
            threshold_c: (perturb_kind & 1 != 0).then_some(threshold),
            attack_load_kw: (perturb_kind & 2 != 0).then_some(load_kw),
            ..Perturbation::default()
        };
        let effective = perturbation.apply(&base);

        let (mut via_binary, _) = effective.build_sim().unwrap();
        via_binary.restore(&snap).unwrap();
        let (mut via_json, _) = effective.build_sim().unwrap();
        via_json.restore_from_json(&line).unwrap();
        prop_assert_eq!(via_binary.snapshot_json(), via_json.snapshot_json());

        for slot in 0..k {
            let a = via_binary.step();
            let b = via_json.step();
            prop_assert_eq!(a, b, "slot {} diverged between restore paths", slot);
        }
        prop_assert_eq!(via_binary.metrics(), via_json.metrics());
        prop_assert_eq!(via_binary.snapshot_json(), via_json.snapshot_json());
    }

    /// serialize → restore → step K ≡ uninterrupted, over random policies,
    /// seeds, split points, and optional mid-run perturbations.
    #[test]
    fn snapshot_restore_equals_uninterrupted(
        policy_idx in 0usize..3,
        seed in 0u64..40,
        split in 50u64..1200,
        k in 50u64..600,
        perturb_kind in 0usize..4,
        threshold in 29.0..34.0f64,
        load_kw in 0.8..1.6f64,
    ) {
        let perturb_threshold = (perturb_kind & 1 != 0).then_some(threshold);
        let perturb_load = (perturb_kind & 2 != 0).then_some(load_kw);
        let policy = ["random", "myopic", "foresighted"][policy_idx];
        let base = short(policy, seed);
        let (mut reference, _) = base.build_sim().unwrap();
        reference.run(split);

        let perturbation = Perturbation {
            threshold_c: perturb_threshold,
            attack_load_kw: perturb_load,
            ..Perturbation::default()
        };
        let effective = perturbation.apply(&base);
        let snap = reference.snapshot_json();

        // Perturb path (also exercised when the perturbation is empty —
        // then effective == base and this is a plain restore).
        let (mut live, _) = effective.build_sim().unwrap();
        live.restore_from_json(&snap).unwrap();

        // Crash path: a second independent rebuild+restore.
        let (mut recovered, _) = effective.build_sim().unwrap();
        recovered.restore_from_json(&snap).unwrap();

        for slot in 0..k {
            let a = live.step();
            let b = recovered.step();
            prop_assert_eq!(a, b, "slot {} diverged between restores", slot);
        }
        prop_assert_eq!(live.metrics(), recovered.metrics());
        prop_assert_eq!(live.snapshot_json(), recovered.snapshot_json());
    }
}
