//! The tiered front end: answer from the surrogate inside the trust
//! region, fall back to full extraction outside it, and count every
//! decision.

use std::sync::atomic::{AtomicU64, Ordering};

use hbm_thermal::HeatMatrixModel;

use crate::model::{ExtractionSettings, SurrogateModel, SurrogateQuery};

/// Which tier produced a [`HeatMatrixModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThermalTier {
    /// Answered by the trained surrogate inside its trust region.
    Surrogate,
    /// Answered by full CFD-lite extraction (no model loaded, or fallback).
    Extracted,
}

impl ThermalTier {
    /// Stable lowercase name, used in response headers and logs.
    pub fn as_str(&self) -> &'static str {
        match self {
            ThermalTier::Surrogate => "surrogate",
            ThermalTier::Extracted => "extracted",
        }
    }
}

/// Snapshot of a [`TieredExtractor`]'s decision counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierStats {
    /// Queries answered by the surrogate.
    pub hits: u64,
    /// Queries extracted because no surrogate model is loaded.
    pub misses: u64,
    /// Queries extracted despite a loaded model (outside the trust region
    /// or bound above tolerance).
    pub fallbacks: u64,
    /// The loaded model's held-out max inlet error, °C (0 when no model).
    pub bound_c: f64,
}

/// Answers heat-matrix queries from the cheapest tier that can honor the
/// error tolerance.
///
/// The contract: a query inside the loaded model's trust region whose
/// carried error bound is within `tolerance_c` is answered by
/// [`SurrogateModel::predict`]; every other query takes the exact same
/// [`ExtractionSettings::extract`] path the rest of the stack uses, so
/// fallback output is byte-identical to never having a surrogate at all.
/// Counters are relaxed atomics, safe to read from any thread.
#[derive(Debug)]
pub struct TieredExtractor {
    settings: ExtractionSettings,
    model: Option<SurrogateModel>,
    tolerance_c: f64,
    hits: AtomicU64,
    misses: AtomicU64,
    fallbacks: AtomicU64,
}

impl TieredExtractor {
    /// A tier with no trained model: every query extracts (and counts as a
    /// miss). Useful as the neutral default and for byte-identity tests.
    pub fn without_model(settings: ExtractionSettings, tolerance_c: f64) -> Self {
        TieredExtractor {
            settings,
            model: None,
            tolerance_c,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// A tier answering from `model` whenever the query is inside its
    /// trust region and the model's inlet error bound is at most
    /// `tolerance_c`.
    pub fn with_model(model: SurrogateModel, tolerance_c: f64) -> Self {
        TieredExtractor {
            settings: model.settings().clone(),
            model: Some(model),
            tolerance_c,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// The extraction family this tier serves.
    pub fn settings(&self) -> &ExtractionSettings {
        &self.settings
    }

    /// The loaded model, if any.
    pub fn model(&self) -> Option<&SurrogateModel> {
        self.model.as_ref()
    }

    /// The inlet-error tolerance a surrogate answer must stay within, °C.
    pub fn tolerance_c(&self) -> f64 {
        self.tolerance_c
    }

    /// The query matching this tier's own settings at a given per-server
    /// baseline power — supply and leakage come from the base config.
    pub fn query_for_baseline(&self, baseline_w: f64) -> SurrogateQuery {
        SurrogateQuery {
            baseline_w,
            supply_c: self.settings.config.cooling.supply.as_celsius(),
            leakage: self.settings.config.leakage_fraction,
        }
    }

    /// Answers `q` from the cheapest admissible tier.
    ///
    /// # Errors
    ///
    /// Returns a message when the query maps to a physically invalid
    /// configuration (fallback and miss paths validate before extracting;
    /// a fallback that then fails validation still counts as a fallback).
    pub fn model_for(&self, q: &SurrogateQuery) -> Result<(HeatMatrixModel, ThermalTier), String> {
        match &self.model {
            Some(m) if m.domain().contains(q) && m.max_abs_err_inlet_c() <= self.tolerance_c => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok((m.predict(q), ThermalTier::Surrogate))
            }
            Some(_) => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                Ok((self.settings.extract(q)?, ThermalTier::Extracted))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok((self.settings.extract(q)?, ThermalTier::Extracted))
            }
        }
    }

    /// Current decision counters plus the loaded model's bound.
    pub fn stats(&self) -> TierStats {
        TierStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            bound_c: self.bound_c(),
        }
    }

    /// The loaded model's held-out max inlet error, °C (0 when no model).
    pub fn bound_c(&self) -> f64 {
        self.model.as_ref().map_or(0.0, |m| m.max_abs_err_inlet_c())
    }
}

#[cfg(test)]
mod tests {
    use hbm_thermal::{clear_heat_matrix_cache, CfdConfig, HeatMatrixModel};
    use hbm_units::{Duration, Power};

    use super::*;
    use crate::model::{FitOptions, SurrogateDomain};

    fn small_settings() -> ExtractionSettings {
        ExtractionSettings {
            config: CfdConfig {
                racks: 1,
                servers_per_rack: 3,
                ..CfdConfig::paper_default()
            },
            spike: Power::from_watts(120.0),
            window: Duration::from_minutes(5.0),
            lag_step: Duration::from_minutes(1.0),
        }
    }

    fn small_domain() -> SurrogateDomain {
        SurrogateDomain {
            lo: [120.0, 25.0, 0.03],
            hi: [180.0, 29.0, 0.10],
        }
    }

    /// Bit patterns of everything a [`HeatMatrixModel`] predicts from.
    fn bits(model: &HeatMatrixModel) -> Vec<u64> {
        let matrix = model.matrix();
        let n = matrix.server_count();
        let lags = matrix.lag_count();
        let mut out = Vec::new();
        for s in 0..n {
            for r in 0..n {
                for l in 0..lags {
                    out.push(matrix.response(s, r, l).to_bits());
                }
            }
        }
        for p in model.baseline_powers() {
            out.push(p.as_watts().to_bits());
        }
        for &t in model.baseline_inlets_celsius() {
            out.push(t.to_bits());
        }
        out.push(model.supply_celsius().to_bits());
        out
    }

    /// The fallback contract: out-of-region queries through the tier are
    /// byte-identical to calling the extraction path directly — with the
    /// process cache cleared in between, so both sides recompute from the
    /// CFD model rather than sharing one memoized result.
    #[test]
    fn golden_fallback_is_byte_identical_to_direct_extraction() {
        let settings = small_settings();
        let model = SurrogateModel::fit(
            settings.clone(),
            small_domain(),
            FitOptions {
                grid_points: 2,
                holdout_every: 4,
                lambda: 1e-8,
            },
        )
        .unwrap();
        let tier = TieredExtractor::with_model(model, 10.0);
        // Outside the trust region on the baseline axis.
        let q = SurrogateQuery {
            baseline_w: 200.0,
            supply_c: 27.0,
            leakage: 0.06,
        };
        clear_heat_matrix_cache();
        let (via_tier, kind) = tier.model_for(&q).unwrap();
        assert_eq!(kind, ThermalTier::Extracted);
        assert_eq!(tier.stats().fallbacks, 1);

        clear_heat_matrix_cache();
        let (config, baseline) = settings.apply(&q);
        let direct = HeatMatrixModel::from_cfd(
            &config,
            &baseline,
            settings.spike,
            settings.window,
            settings.lag_step,
        );
        assert_eq!(bits(&via_tier), bits(&direct));
        assert_eq!(via_tier, direct);
    }

    /// Same contract for the no-model tier: misses are plain extractions.
    #[test]
    fn golden_miss_is_byte_identical_to_direct_extraction() {
        let settings = small_settings();
        let tier = TieredExtractor::without_model(settings.clone(), 0.5);
        let q = tier.query_for_baseline(150.0);
        clear_heat_matrix_cache();
        let (via_tier, kind) = tier.model_for(&q).unwrap();
        assert_eq!(kind, ThermalTier::Extracted);
        assert_eq!(tier.stats().misses, 1);
        assert_eq!(tier.stats().hits, 0);

        clear_heat_matrix_cache();
        let direct = settings.extract(&q).unwrap();
        assert_eq!(bits(&via_tier), bits(&direct));
    }

    /// In-region queries hit the surrogate, and a tolerance tighter than
    /// the measured bound forces fallback even inside the region.
    #[test]
    fn tolerance_gates_the_surrogate_tier() {
        let model = SurrogateModel::fit(
            small_settings(),
            small_domain(),
            FitOptions {
                grid_points: 3,
                holdout_every: 3,
                lambda: 1e-8,
            },
        )
        .unwrap();
        let inside = SurrogateQuery {
            baseline_w: 150.0,
            supply_c: 27.0,
            leakage: 0.06,
        };

        let generous = TieredExtractor::with_model(model.clone(), f64::INFINITY);
        let (_, kind) = generous.model_for(&inside).unwrap();
        assert_eq!(kind, ThermalTier::Surrogate);
        assert_eq!(generous.stats().hits, 1);
        assert_eq!(generous.bound_c(), model.max_abs_err_inlet_c());

        let strict = TieredExtractor::with_model(model, -1.0);
        let (_, kind) = strict.model_for(&inside).unwrap();
        assert_eq!(kind, ThermalTier::Extracted);
        assert_eq!(strict.stats().fallbacks, 1);
    }
}
