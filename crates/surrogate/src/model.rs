//! The trained surrogate: fitting, prediction, and the serialized
//! `hbm-surrogate-v1` artifact.

use hbm_telemetry::json::{parse_flat_object, push_json_f64_array, JsonObject, JsonValue};
use hbm_telemetry::timing;
use hbm_thermal::{CfdConfig, CoolingSystem, HeatMatrix, HeatMatrixModel};
use hbm_units::{Duration, Power, Temperature};

use crate::ridge::{poly_features, NormalEquations, FEATURES, KNOBS};

/// Artifact schema identifier (bump on any incompatible layout change).
pub const SCHEMA: &str = "hbm-surrogate-v1";

/// One point in the continuous scenario-knob space the surrogate covers:
/// the operating point (uniform per-server baseline power), the cooling
/// setpoint, and the containment geometry (leakage fraction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurrogateQuery {
    /// Uniform per-server baseline power, W.
    pub baseline_w: f64,
    /// Cooling supply-air setpoint, °C.
    pub supply_c: f64,
    /// Containment leakage fraction (recirculation bypass), in `[0, 0.5)`.
    pub leakage: f64,
}

impl SurrogateQuery {
    fn as_array(&self) -> [f64; KNOBS] {
        [self.baseline_w, self.supply_c, self.leakage]
    }
}

/// Axis-aligned trust region in knob space: the box the surrogate was
/// trained over. Queries outside it must not be answered from the fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurrogateDomain {
    /// Lower corner `(baseline_w, supply_c, leakage)`.
    pub lo: [f64; KNOBS],
    /// Upper corner `(baseline_w, supply_c, leakage)`.
    pub hi: [f64; KNOBS],
}

impl SurrogateDomain {
    /// Whether `q` lies inside the closed box.
    pub fn contains(&self, q: &SurrogateQuery) -> bool {
        self.lo
            .iter()
            .zip(self.hi)
            .zip(q.as_array())
            .all(|((&lo, hi), x)| x >= lo && x <= hi)
    }

    /// Maps `q` to the `[-1, 1]` cube the polynomial basis is built on.
    fn normalize(&self, q: &SurrogateQuery) -> [f64; KNOBS] {
        let x = q.as_array();
        let mut out = [0.0; KNOBS];
        for i in 0..KNOBS {
            out[i] = 2.0 * (x[i] - self.lo[i]) / (self.hi[i] - self.lo[i]) - 1.0;
        }
        out
    }

    /// Checks the box is finite and non-degenerate.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated axis.
    pub fn validate(&self) -> Result<(), String> {
        for i in 0..KNOBS {
            if !(self.lo[i].is_finite() && self.hi[i].is_finite() && self.lo[i] < self.hi[i]) {
                return Err(format!(
                    "surrogate domain axis {i} must satisfy lo < hi (got [{}, {}])",
                    self.lo[i], self.hi[i]
                ));
            }
        }
        Ok(())
    }
}

/// Everything that fixes the extraction family a surrogate stands in for:
/// the base CFD configuration plus the probe settings of
/// [`hbm_thermal::extract_heat_matrix`]. A [`SurrogateQuery`] is applied
/// to the base by one deterministic mapping ([`ExtractionSettings::apply`]),
/// shared by fitting, prediction, and the fallback path — which is what
/// makes fallback output byte-identical to calling the extractor directly.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionSettings {
    /// Base CFD configuration; a query overrides `cooling.supply` and
    /// `leakage_fraction`.
    pub config: CfdConfig,
    /// Probe spike power.
    pub spike: Power,
    /// Response window.
    pub window: Duration,
    /// Lag step (slot length).
    pub lag_step: Duration,
}

impl ExtractionSettings {
    /// The deterministic query → extraction-input mapping: the base config
    /// with the query's supply setpoint and leakage fraction, and a uniform
    /// per-server baseline power vector.
    pub fn apply(&self, q: &SurrogateQuery) -> (CfdConfig, Vec<Power>) {
        let mut config = self.config;
        config.cooling.supply = Temperature::from_celsius(q.supply_c);
        config.leakage_fraction = q.leakage;
        let baseline = vec![Power::from_watts(q.baseline_w); config.server_count()];
        (config, baseline)
    }

    /// Full extraction at `q` through the process-wide memoized cache —
    /// the tier-1 path the surrogate is fitted against and falls back to.
    ///
    /// # Errors
    ///
    /// Returns a message when the mapped configuration is physically
    /// invalid (so arbitrary out-of-domain queries error instead of
    /// panicking inside the CFD model).
    pub fn extract(&self, q: &SurrogateQuery) -> Result<HeatMatrixModel, String> {
        let (config, baseline) = self.apply(q);
        config.validate()?;
        if !(q.baseline_w.is_finite() && q.baseline_w > 0.0) {
            return Err(format!(
                "baseline power must be positive, got {} W",
                q.baseline_w
            ));
        }
        Ok(HeatMatrixModel::from_cfd(
            &config,
            &baseline,
            self.spike,
            self.window,
            self.lag_step,
        ))
    }

    /// Number of lag steps the extraction window covers.
    fn lag_count(&self) -> usize {
        (self.window / self.lag_step).round() as usize
    }
}

/// Fitting parameters.
#[derive(Debug, Clone, Copy)]
pub struct FitOptions {
    /// Grid points per knob axis (≥ 2; the sample count is the cube).
    pub grid_points: usize,
    /// Every `holdout_every`-th grid point (≥ 2) is withheld from the fit
    /// and used to measure the error bound.
    pub holdout_every: usize,
    /// Ridge penalty λ (> 0).
    pub lambda: f64,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            grid_points: 5,
            holdout_every: 3,
            lambda: 1e-8,
        }
    }
}

/// A fitted, error-bounded surrogate for heat-matrix extraction.
///
/// Predicts the full extraction output — every impulse-response column
/// *and* the steady-state baseline inlets — as degree-2 polynomials of the
/// normalized knobs. The model carries the max/mean absolute error
/// measured on its held-out validation split, separately for the response
/// entries (K/W) and the baseline inlets (°C), and serializes to a flat
/// JSON artifact with bit-exact `f64` round-trips (same substrate as the
/// `hbm-checkpoint-v1` schema).
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateModel {
    settings: ExtractionSettings,
    domain: SurrogateDomain,
    servers: usize,
    lags: usize,
    lambda: f64,
    /// `FEATURES × outputs` row-major; outputs are the
    /// `servers² × lags` response entries followed by `servers` inlets.
    coeffs: Vec<f64>,
    train_samples: usize,
    holdout_samples: usize,
    max_abs_err_response: f64,
    mean_abs_err_response: f64,
    max_abs_err_inlet_c: f64,
    mean_abs_err_inlet_c: f64,
}

impl SurrogateModel {
    /// Fits a surrogate on a `grid³` sample of `domain`, holding out every
    /// `holdout_every`-th point to measure the error bound against full
    /// extraction (itself pinned to the CFD model by 1e-12 golden tests).
    ///
    /// Records one `surrogate.fit` telemetry span covering the whole fit,
    /// with one unit per extracted sample.
    ///
    /// # Errors
    ///
    /// Returns a message for a degenerate domain, bad fit options, an
    /// invalid mapped configuration anywhere on the grid, or an empty
    /// validation split.
    pub fn fit(
        settings: ExtractionSettings,
        domain: SurrogateDomain,
        options: FitOptions,
    ) -> Result<SurrogateModel, String> {
        domain.validate()?;
        let g = options.grid_points;
        if g < 2 {
            return Err(format!("grid needs at least 2 points per axis, got {g}"));
        }
        if options.holdout_every < 2 {
            return Err(format!(
                "holdout-every must be at least 2 so training keeps most points, got {}",
                options.holdout_every
            ));
        }
        let span = timing::start();
        let servers = settings.config.server_count();
        let lags = settings.lag_count();
        let outputs = servers * servers * lags + servers;

        let axis = |i: usize, step: usize| -> f64 {
            domain.lo[i] + (domain.hi[i] - domain.lo[i]) * step as f64 / (g - 1) as f64
        };
        let mut ne = NormalEquations::new(outputs);
        let mut holdout: Vec<(SurrogateQuery, Vec<f64>)> = Vec::new();
        let mut features = [0.0; FEATURES];
        let mut targets = vec![0.0; outputs];
        let mut index = 0usize;
        for i in 0..g {
            for j in 0..g {
                for k in 0..g {
                    let q = SurrogateQuery {
                        baseline_w: axis(0, i),
                        supply_c: axis(1, j),
                        leakage: axis(2, k),
                    };
                    let model = settings.extract(&q)?;
                    extraction_outputs(&model, servers, lags, &mut targets);
                    if index % options.holdout_every == options.holdout_every - 1 {
                        holdout.push((q, targets.clone()));
                    } else {
                        poly_features(&domain.normalize(&q), &mut features);
                        ne.add(&features, &targets);
                    }
                    index += 1;
                }
            }
        }
        if holdout.is_empty() {
            return Err(format!(
                "validation split is empty ({index} grid points, holdout-every {})",
                options.holdout_every
            ));
        }
        let train_samples = ne.samples();
        let coeffs = ne.solve(options.lambda)?;

        let mut model = SurrogateModel {
            settings,
            domain,
            servers,
            lags,
            lambda: options.lambda,
            coeffs,
            train_samples,
            holdout_samples: holdout.len(),
            max_abs_err_response: 0.0,
            mean_abs_err_response: 0.0,
            max_abs_err_inlet_c: 0.0,
            mean_abs_err_inlet_c: 0.0,
        };
        let split = servers * servers * lags;
        let (mut sum_r, mut sum_i) = (0.0f64, 0.0f64);
        let mut predicted = vec![0.0; outputs];
        for (q, truth) in &holdout {
            model.predict_raw(q, &mut predicted);
            for (o, (&p, &t)) in predicted.iter().zip(truth).enumerate() {
                let err = (p - t).abs();
                if o < split {
                    model.max_abs_err_response = model.max_abs_err_response.max(err);
                    sum_r += err;
                } else {
                    model.max_abs_err_inlet_c = model.max_abs_err_inlet_c.max(err);
                    sum_i += err;
                }
            }
        }
        model.mean_abs_err_response = sum_r / (holdout.len() * split) as f64;
        model.mean_abs_err_inlet_c = sum_i / (holdout.len() * servers) as f64;
        timing::record_span_units("surrogate.fit", span, index as u64);
        Ok(model)
    }

    /// Evaluates the polynomial for every output into `out`.
    fn predict_raw(&self, q: &SurrogateQuery, out: &mut [f64]) {
        let mut features = [0.0; FEATURES];
        poly_features(&self.domain.normalize(q), &mut features);
        let m = out.len();
        out.fill(0.0);
        for (k, &f) in features.iter().enumerate() {
            let row = &self.coeffs[k * m..(k + 1) * m];
            for (o, &c) in out.iter_mut().zip(row) {
                *o += f * c;
            }
        }
    }

    /// Predicts the full extraction result at `q` and assembles it into a
    /// ready-to-step [`HeatMatrixModel`] — no CFD run, no extraction.
    ///
    /// The caller is responsible for checking [`SurrogateModel::domain`]
    /// first (the [`crate::TieredExtractor`] front end does); outside the
    /// trust region the polynomial extrapolates and the error bound does
    /// not apply. Records one `surrogate.predict` telemetry span.
    pub fn predict(&self, q: &SurrogateQuery) -> HeatMatrixModel {
        let span = timing::start();
        let split = self.servers * self.servers * self.lags;
        let mut out = vec![0.0; split + self.servers];
        self.predict_raw(q, &mut out);
        let inlets: Vec<Temperature> = out[split..]
            .iter()
            .map(|&c| Temperature::from_celsius(c))
            .collect();
        out.truncate(split);
        let matrix = HeatMatrix::from_raw(self.servers, self.lags, self.settings.lag_step, out);
        let model = HeatMatrixModel::new(
            matrix,
            vec![Power::from_watts(q.baseline_w); self.servers],
            inlets,
            Temperature::from_celsius(q.supply_c),
        );
        timing::record_span("surrogate.predict", span);
        model
    }

    /// The extraction family this surrogate stands in for.
    pub fn settings(&self) -> &ExtractionSettings {
        &self.settings
    }

    /// The trust region the fit covered.
    pub fn domain(&self) -> &SurrogateDomain {
        &self.domain
    }

    /// Servers in the modeled container.
    pub fn server_count(&self) -> usize {
        self.servers
    }

    /// Lag steps per response column.
    pub fn lag_count(&self) -> usize {
        self.lags
    }

    /// Training / held-out sample counts.
    pub fn sample_counts(&self) -> (usize, usize) {
        (self.train_samples, self.holdout_samples)
    }

    /// Held-out max absolute error of the response entries, K/W.
    pub fn max_abs_err_response(&self) -> f64 {
        self.max_abs_err_response
    }

    /// Held-out mean absolute error of the response entries, K/W.
    pub fn mean_abs_err_response(&self) -> f64 {
        self.mean_abs_err_response
    }

    /// Held-out max absolute error of the baseline inlets, °C — the
    /// headline bound the tier compares against its tolerance.
    pub fn max_abs_err_inlet_c(&self) -> f64 {
        self.max_abs_err_inlet_c
    }

    /// Held-out mean absolute error of the baseline inlets, °C.
    pub fn mean_abs_err_inlet_c(&self) -> f64 {
        self.mean_abs_err_inlet_c
    }

    /// Serializes the model as one `hbm-surrogate-v1` flat-JSON line.
    /// Floats use shortest-round-trip encoding, so
    /// [`SurrogateModel::from_flat_json`] reproduces every coefficient and
    /// bound bit-exactly.
    pub fn to_flat_json(&self) -> String {
        let c = &self.settings.config;
        let mut o = JsonObject::new();
        o.str("schema", SCHEMA)
            .u64("racks", c.racks as u64)
            .u64("servers_per_rack", c.servers_per_rack as u64)
            .f64("cooling_capacity_w", c.cooling.capacity.as_watts())
            .f64("cooling_supply_c", c.cooling.supply.as_celsius())
            .f64(
                "cooling_derate_onset_c",
                c.cooling.derate_onset.as_celsius(),
            )
            .f64("cooling_derate_per_kelvin", c.cooling.derate_per_kelvin)
            .f64(
                "cooling_min_capacity_fraction",
                c.cooling.min_capacity_fraction,
            )
            .f64("per_server_flow_kg_s", c.per_server_flow_kg_s)
            .f64("leakage_fraction", c.leakage_fraction)
            .f64("cell_mass_kg", c.cell_mass_kg)
            .f64("plenum_mass_kg", c.plenum_mass_kg)
            .f64("spike_w", self.settings.spike.as_watts())
            .f64("window_s", self.settings.window.as_seconds())
            .f64("lag_step_s", self.settings.lag_step.as_seconds())
            .u64("servers", self.servers as u64)
            .u64("lags", self.lags as u64)
            .f64("lambda", self.lambda)
            .u64("train_samples", self.train_samples as u64)
            .u64("holdout_samples", self.holdout_samples as u64)
            .f64("max_abs_err_response", self.max_abs_err_response)
            .f64("mean_abs_err_response", self.mean_abs_err_response)
            .f64("max_abs_err_inlet_c", self.max_abs_err_inlet_c)
            .f64("mean_abs_err_inlet_c", self.mean_abs_err_inlet_c);
        let mut arr = String::new();
        push_json_f64_array(&mut arr, &self.domain.lo);
        o.raw("domain_lo", &arr);
        arr.clear();
        push_json_f64_array(&mut arr, &self.domain.hi);
        o.raw("domain_hi", &arr);
        arr.clear();
        push_json_f64_array(&mut arr, &self.coeffs);
        o.raw("coeffs", &arr);
        o.finish()
    }

    /// Parses and validates an `hbm-surrogate-v1` artifact.
    ///
    /// # Errors
    ///
    /// Returns a message for a wrong schema, a missing or mistyped field,
    /// a coefficient count that disagrees with the declared dimensions, or
    /// a physically invalid embedded configuration.
    pub fn from_flat_json(line: &str) -> Result<SurrogateModel, String> {
        let mut fields = Fields(parse_flat_object(line)?);
        let schema = fields.str("schema")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (expected {SCHEMA:?})"
            ));
        }
        let config = CfdConfig {
            racks: fields.usize("racks")?,
            servers_per_rack: fields.usize("servers_per_rack")?,
            cooling: CoolingSystem {
                capacity: Power::from_watts(fields.f64("cooling_capacity_w")?),
                supply: Temperature::from_celsius(fields.f64("cooling_supply_c")?),
                derate_onset: Temperature::from_celsius(fields.f64("cooling_derate_onset_c")?),
                derate_per_kelvin: fields.f64("cooling_derate_per_kelvin")?,
                min_capacity_fraction: fields.f64("cooling_min_capacity_fraction")?,
            },
            per_server_flow_kg_s: fields.f64("per_server_flow_kg_s")?,
            leakage_fraction: fields.f64("leakage_fraction")?,
            cell_mass_kg: fields.f64("cell_mass_kg")?,
            plenum_mass_kg: fields.f64("plenum_mass_kg")?,
        };
        config.validate()?;
        let settings = ExtractionSettings {
            config,
            spike: Power::from_watts(fields.f64("spike_w")?),
            window: Duration::from_seconds(fields.f64("window_s")?),
            lag_step: Duration::from_seconds(fields.f64("lag_step_s")?),
        };
        if settings.spike.as_watts() <= 0.0 || settings.spike.as_watts().is_nan() {
            return Err("spike_w must be positive".into());
        }
        if !(settings.lag_step > Duration::ZERO && settings.window >= settings.lag_step) {
            return Err("window_s must cover at least one positive lag_step_s".into());
        }
        let servers = fields.usize("servers")?;
        let lags = fields.usize("lags")?;
        if servers != config.server_count() {
            return Err(format!(
                "servers field ({servers}) disagrees with the configuration ({})",
                config.server_count()
            ));
        }
        let domain = SurrogateDomain {
            lo: fields.f64_triple("domain_lo")?,
            hi: fields.f64_triple("domain_hi")?,
        };
        domain.validate()?;
        let coeffs = fields.f64_array("coeffs")?;
        let outputs = servers * servers * lags + servers;
        if coeffs.len() != FEATURES * outputs {
            return Err(format!(
                "coeffs length {} disagrees with {FEATURES} features x {outputs} outputs",
                coeffs.len()
            ));
        }
        Ok(SurrogateModel {
            settings,
            domain,
            servers,
            lags,
            lambda: fields.f64("lambda")?,
            coeffs,
            train_samples: fields.usize("train_samples")?,
            holdout_samples: fields.usize("holdout_samples")?,
            max_abs_err_response: fields.f64("max_abs_err_response")?,
            mean_abs_err_response: fields.f64("mean_abs_err_response")?,
            max_abs_err_inlet_c: fields.f64("max_abs_err_inlet_c")?,
            mean_abs_err_inlet_c: fields.f64("mean_abs_err_inlet_c")?,
        })
    }

    /// Builds a model directly from its parts — the deserialization shape,
    /// exposed for tests that need synthetic models without a fit.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        settings: ExtractionSettings,
        domain: SurrogateDomain,
        coeffs: Vec<f64>,
        train_samples: usize,
        holdout_samples: usize,
        response_err: (f64, f64),
        inlet_err: (f64, f64),
        lambda: f64,
    ) -> Result<SurrogateModel, String> {
        domain.validate()?;
        let servers = settings.config.server_count();
        let lags = settings.lag_count();
        let outputs = servers * servers * lags + servers;
        if coeffs.len() != FEATURES * outputs {
            return Err(format!(
                "coeffs length {} disagrees with {FEATURES} features x {outputs} outputs",
                coeffs.len()
            ));
        }
        Ok(SurrogateModel {
            settings,
            domain,
            servers,
            lags,
            lambda,
            coeffs,
            train_samples,
            holdout_samples,
            max_abs_err_response: response_err.0,
            mean_abs_err_response: response_err.1,
            max_abs_err_inlet_c: inlet_err.0,
            mean_abs_err_inlet_c: inlet_err.1,
        })
    }
}

/// Flattens an extracted model into the surrogate's regression targets:
/// the raw response entries (`[source][receiver][lag]` order, K/W)
/// followed by the baseline inlets (°C).
fn extraction_outputs(model: &HeatMatrixModel, servers: usize, lags: usize, out: &mut [f64]) {
    let matrix = model.matrix();
    let mut idx = 0;
    for source in 0..servers {
        for receiver in 0..servers {
            for lag in 0..lags {
                out[idx] = matrix.response(source, receiver, lag);
                idx += 1;
            }
        }
    }
    for &t in model.baseline_inlets_celsius() {
        out[idx] = t;
        idx += 1;
    }
}

/// Field lookup over one parsed flat object, with typed extraction.
struct Fields(Vec<(String, JsonValue)>);

impl Fields {
    fn get(&mut self, key: &str) -> Result<JsonValue, String> {
        let pos = self
            .0
            .iter()
            .position(|(k, _)| k == key)
            .ok_or_else(|| format!("missing field {key:?}"))?;
        Ok(self.0.remove(pos).1)
    }

    fn f64(&mut self, key: &str) -> Result<f64, String> {
        self.get(key)?
            .as_f64()
            .ok_or_else(|| format!("{key} must be a number"))
    }

    fn usize(&mut self, key: &str) -> Result<usize, String> {
        let v = self.f64(key)?;
        if v < 0.0 || v.fract() != 0.0 || v > u32::MAX as f64 {
            return Err(format!(
                "{key} must be a small non-negative integer, got {v}"
            ));
        }
        Ok(v as usize)
    }

    fn str(&mut self, key: &str) -> Result<String, String> {
        match self.get(key)? {
            JsonValue::Str(s) => Ok(s),
            _ => Err(format!("{key} must be a string")),
        }
    }

    fn f64_array(&mut self, key: &str) -> Result<Vec<f64>, String> {
        match self.get(key)? {
            JsonValue::Arr(items) => items
                .iter()
                .map(|v| v.as_f64().ok_or_else(|| format!("{key} must hold numbers")))
                .collect(),
            _ => Err(format!("{key} must be an array")),
        }
    }

    fn f64_triple(&mut self, key: &str) -> Result<[f64; KNOBS], String> {
        let v = self.f64_array(key)?;
        v.try_into()
            .map_err(|v: Vec<f64>| format!("{key} must hold {KNOBS} numbers, got {}", v.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings() -> ExtractionSettings {
        ExtractionSettings {
            config: CfdConfig {
                racks: 1,
                servers_per_rack: 2,
                ..CfdConfig::paper_default()
            },
            spike: Power::from_watts(120.0),
            window: Duration::from_minutes(5.0),
            lag_step: Duration::from_minutes(1.0),
        }
    }

    fn domain() -> SurrogateDomain {
        SurrogateDomain {
            lo: [120.0, 25.0, 0.03],
            hi: [180.0, 29.0, 0.10],
        }
    }

    /// The headline validation: fitting measures a held-out error bound
    /// against full extraction (pinned to the CFD model by the 1e-12
    /// golden tests in `hbm-thermal`), the bound is tight, and an
    /// arbitrary off-grid query honors it to within a small safety factor.
    #[test]
    fn fit_measures_a_tight_error_bound_on_held_out_extractions() {
        let settings = settings();
        let model = SurrogateModel::fit(
            settings.clone(),
            domain(),
            FitOptions {
                grid_points: 4,
                holdout_every: 3,
                lambda: 1e-8,
            },
        )
        .unwrap();
        let (train, holdout) = model.sample_counts();
        assert_eq!(train + holdout, 64);
        assert_eq!(holdout, 21);
        // The CFD response surface is nearly quadratic in these knobs, so
        // a degree-2 fit on a 4-point grid bounds inlet error in the
        // millikelvin range and response error near 1e-6 K/W.
        assert!(model.max_abs_err_inlet_c() > 0.0);
        assert!(
            model.max_abs_err_inlet_c() < 0.05,
            "{}",
            model.max_abs_err_inlet_c()
        );
        assert!(model.mean_abs_err_inlet_c() <= model.max_abs_err_inlet_c());
        assert!(
            model.max_abs_err_response() < 1e-4,
            "{}",
            model.max_abs_err_response()
        );
        assert!(model.mean_abs_err_response() <= model.max_abs_err_response());

        // Off-grid (not a training or holdout point): prediction error vs
        // fresh extraction stays within a 10x safety factor of the bound.
        let q = SurrogateQuery {
            baseline_w: 143.7,
            supply_c: 27.9,
            leakage: 0.071,
        };
        let predicted = model.predict(&q);
        let truth = settings.extract(&q).unwrap();
        let n = truth.matrix().server_count();
        for (p, t) in predicted
            .baseline_inlets_celsius()
            .iter()
            .zip(truth.baseline_inlets_celsius())
        {
            assert!(
                (p - t).abs() <= 10.0 * model.max_abs_err_inlet_c(),
                "{p} vs {t}"
            );
        }
        for s in 0..n {
            for r in 0..n {
                for l in 0..truth.matrix().lag_count() {
                    let p = predicted.matrix().response(s, r, l);
                    let t = truth.matrix().response(s, r, l);
                    assert!(
                        (p - t).abs() <= 10.0 * model.max_abs_err_response(),
                        "{p} vs {t}"
                    );
                }
            }
        }
        // The prediction carries the query's operating point verbatim.
        assert_eq!(predicted.supply_celsius(), q.supply_c);
        assert_eq!(predicted.baseline_powers(), truth.baseline_powers());
    }

    /// Degenerate fit inputs are rejected with messages, not panics.
    #[test]
    fn bad_fit_inputs_are_errors() {
        let bad_domain = SurrogateDomain {
            lo: [180.0, 25.0, 0.03],
            hi: [120.0, 29.0, 0.10],
        };
        assert!(SurrogateModel::fit(settings(), bad_domain, FitOptions::default()).is_err());
        let opts = FitOptions {
            grid_points: 1,
            ..FitOptions::default()
        };
        assert!(SurrogateModel::fit(settings(), domain(), opts).is_err());
        let opts = FitOptions {
            holdout_every: 1,
            ..FitOptions::default()
        };
        assert!(SurrogateModel::fit(settings(), domain(), opts).is_err());
        // Leakage above the physical ceiling: the mapped config fails
        // validation before any CFD work.
        let wide = SurrogateDomain {
            lo: [120.0, 25.0, 0.03],
            hi: [180.0, 29.0, 0.60],
        };
        assert!(SurrogateModel::fit(settings(), wide, FitOptions::default()).is_err());
    }
}
