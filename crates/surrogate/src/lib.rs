//! Error-bounded polynomial surrogate for heat-matrix extraction.
//!
//! The workspace already has a two-tier thermal stack: the offline
//! CFD-lite model ([`hbm_thermal::CfdModel`]) and the impulse-response
//! heat matrix extracted from it ([`hbm_thermal::HeatMatrixModel`],
//! ~80 µs per cold extraction at 4 servers). This crate adds a third,
//! cheapest tier: a ridge-regression surrogate on degree-2 polynomial
//! features of three continuous scenario knobs — per-server baseline
//! power, cooling supply setpoint, and containment leakage — that
//! predicts the *entire* extraction output (every response column plus
//! the steady-state baseline inlets) in a few microseconds.
//!
//! Three properties make the tier safe to put on hot paths:
//!
//! 1. **Error-bounded.** [`SurrogateModel::fit`] withholds a validation
//!    split from its training grid and measures max/mean absolute error
//!    against full extraction (itself pinned to the CFD model by 1e-12
//!    golden tests). The measured bound travels with the model.
//! 2. **Self-verifying artifact.** [`SurrogateModel::to_flat_json`]
//!    serializes coefficients, domain, and bounds with bit-exact `f64`
//!    round-trips; [`SurrogateModel::from_flat_json`] re-validates every
//!    dimension before accepting it.
//! 3. **Byte-identical fallback.** [`TieredExtractor::model_for`] only
//!    answers from the surrogate inside the trained trust region and
//!    within the caller's tolerance; every other query takes the exact
//!    extraction path the rest of the stack uses, so enabling the tier
//!    never changes out-of-region results by even one bit.
//!
//! # Examples
//!
//! ```
//! use hbm_surrogate::{
//!     ExtractionSettings, FitOptions, SurrogateDomain, SurrogateModel, ThermalTier,
//!     TieredExtractor,
//! };
//! use hbm_thermal::CfdConfig;
//! use hbm_units::{Duration, Power};
//!
//! let settings = ExtractionSettings {
//!     config: CfdConfig {
//!         racks: 1,
//!         servers_per_rack: 2,
//!         ..CfdConfig::paper_default()
//!     },
//!     spike: Power::from_watts(120.0),
//!     window: Duration::from_minutes(5.0),
//!     lag_step: Duration::from_minutes(1.0),
//! };
//! let domain = SurrogateDomain {
//!     lo: [120.0, 25.0, 0.03],
//!     hi: [180.0, 29.0, 0.10],
//! };
//! let model = SurrogateModel::fit(
//!     settings,
//!     domain,
//!     FitOptions {
//!         grid_points: 4,
//!         holdout_every: 3,
//!         lambda: 1e-8,
//!     },
//! )
//! .unwrap();
//! // A 4-point grid already bounds inlet error in the millikelvin range.
//! assert!(model.max_abs_err_inlet_c() < 0.1);
//!
//! let tier = TieredExtractor::with_model(model, 0.5);
//! let inside = tier.query_for_baseline(150.0);
//! let (thermal, kind) = tier.model_for(&inside).unwrap();
//! assert_eq!(kind, ThermalTier::Surrogate);
//! assert_eq!(thermal.matrix().server_count(), 2);
//!
//! let outside = tier.query_for_baseline(500.0);
//! let (_, kind) = tier.model_for(&outside).unwrap();
//! assert_eq!(kind, ThermalTier::Extracted);
//! assert_eq!(tier.stats().fallbacks, 1);
//! ```

mod model;
mod ridge;
mod tier;

pub use model::{
    ExtractionSettings, FitOptions, SurrogateDomain, SurrogateModel, SurrogateQuery, SCHEMA,
};
pub use ridge::{poly_features, NormalEquations, FEATURES, KNOBS};
pub use tier::{ThermalTier, TierStats, TieredExtractor};
