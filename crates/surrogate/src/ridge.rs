//! Hand-rolled ridge regression on degree-2 polynomial features.
//!
//! The build environment has no linear-algebra crates, and none are
//! needed: the design has a fixed, tiny feature dimension
//! ([`FEATURES`] = 10 for the 3 scenario knobs), so the normal equations
//! `(XᵀX + λI) Θ = XᵀY` are a 10×10 symmetric positive-definite solve,
//! factored once by Cholesky and back-substituted for every output column
//! at once. This mirrors the numerics style of `hbm-rl`: flat `Vec<f64>`
//! state, explicit loops, no allocation in inner kernels.

/// Number of continuous knobs a surrogate is trained over.
pub const KNOBS: usize = 3;

/// Number of polynomial features: `1, x, y, z, x², y², z², xy, xz, yz`.
pub const FEATURES: usize = 10;

/// Fills `out` with the degree-2 polynomial features of the normalized
/// knob vector `x` (each component in `[-1, 1]`).
#[inline]
pub fn poly_features(x: &[f64; KNOBS], out: &mut [f64; FEATURES]) {
    let [a, b, c] = *x;
    *out = [1.0, a, b, c, a * a, b * b, c * c, a * b, a * c, b * c];
}

/// Accumulator for the normal equations of a multi-output least-squares
/// fit: `xtx` is the symmetric `FEATURES × FEATURES` Gram matrix, `xty`
/// the `FEATURES × outputs` right-hand side (row-major by feature, so one
/// sample's update streams contiguously over each feature row).
pub struct NormalEquations {
    outputs: usize,
    xtx: Vec<f64>,
    xty: Vec<f64>,
    samples: usize,
}

impl NormalEquations {
    /// Empty accumulator for `outputs` regression targets.
    pub fn new(outputs: usize) -> Self {
        NormalEquations {
            outputs,
            xtx: vec![0.0; FEATURES * FEATURES],
            xty: vec![0.0; FEATURES * outputs],
            samples: 0,
        }
    }

    /// Adds one training sample: feature vector `f`, target row `y`
    /// (length `outputs`).
    pub fn add(&mut self, f: &[f64; FEATURES], y: &[f64]) {
        assert_eq!(y.len(), self.outputs, "target row length mismatch");
        for (i, &fi) in f.iter().enumerate() {
            let gram = &mut self.xtx[i * FEATURES..(i + 1) * FEATURES];
            for (g, &fj) in gram.iter_mut().zip(f.iter()) {
                *g += fi * fj;
            }
            let row = &mut self.xty[i * self.outputs..(i + 1) * self.outputs];
            for (r, &t) in row.iter_mut().zip(y) {
                *r += fi * t;
            }
        }
        self.samples += 1;
    }

    /// Number of samples accumulated so far.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Solves `(XᵀX + λI) Θ = XᵀY` and returns `Θ` as a
    /// `FEATURES × outputs` row-major coefficient matrix.
    ///
    /// # Errors
    ///
    /// Returns a message if the regularized Gram matrix is not positive
    /// definite (possible only for `lambda <= 0` or non-finite inputs).
    pub fn solve(mut self, lambda: f64) -> Result<Vec<f64>, String> {
        if lambda <= 0.0 || lambda.is_nan() {
            return Err(format!("ridge lambda must be positive, got {lambda}"));
        }
        for i in 0..FEATURES {
            self.xtx[i * FEATURES + i] += lambda;
        }
        // In-place Cholesky: lower triangle of xtx becomes L with
        // XᵀX + λI = L Lᵀ.
        let g = &mut self.xtx;
        for i in 0..FEATURES {
            for j in 0..=i {
                let mut sum = g[i * FEATURES + j];
                for k in 0..j {
                    sum -= g[i * FEATURES + k] * g[j * FEATURES + k];
                }
                if i == j {
                    if sum <= 0.0 || sum.is_nan() {
                        return Err(format!(
                            "normal equations not positive definite at pivot {i} (got {sum})"
                        ));
                    }
                    g[i * FEATURES + i] = sum.sqrt();
                } else {
                    g[i * FEATURES + j] = sum / g[j * FEATURES + j];
                }
            }
        }
        // Forward substitution L Z = XᵀY, all output columns at once
        // (rows of xty are contiguous per feature, so each axpy streams).
        let m = self.outputs;
        let theta = &mut self.xty;
        for i in 0..FEATURES {
            for k in 0..i {
                let l = g[i * FEATURES + k];
                let (done, rest) = theta.split_at_mut(i * m);
                let zi = &mut rest[..m];
                let zk = &done[k * m..(k + 1) * m];
                for (a, &b) in zi.iter_mut().zip(zk) {
                    *a -= l * b;
                }
            }
            let d = g[i * FEATURES + i];
            for a in &mut theta[i * m..(i + 1) * m] {
                *a /= d;
            }
        }
        // Back substitution Lᵀ Θ = Z.
        for i in (0..FEATURES).rev() {
            for k in (i + 1)..FEATURES {
                let l = g[k * FEATURES + i];
                let (head, tail) = theta.split_at_mut(k * m);
                let ti = &mut head[i * m..(i + 1) * m];
                let tk = &tail[..m];
                for (a, &b) in ti.iter_mut().zip(tk) {
                    *a -= l * b;
                }
            }
            let d = g[i * FEATURES + i];
            for a in &mut theta[i * m..(i + 1) * m] {
                *a /= d;
            }
        }
        Ok(self.xty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_an_exact_quadratic() {
        // y = 2 + 3x - y² + 0.5xz is inside the feature basis, so a tiny
        // ridge penalty recovers it almost exactly.
        let mut ne = NormalEquations::new(1);
        let mut f = [0.0; FEATURES];
        for i in 0..5 {
            for j in 0..5 {
                for k in 0..5 {
                    let x = [
                        -1.0 + 0.5 * i as f64,
                        -1.0 + 0.5 * j as f64,
                        -1.0 + 0.5 * k as f64,
                    ];
                    poly_features(&x, &mut f);
                    let y = 2.0 + 3.0 * x[0] - x[1] * x[1] + 0.5 * x[0] * x[2];
                    ne.add(&f, &[y]);
                }
            }
        }
        assert_eq!(ne.samples(), 125);
        let theta = ne.solve(1e-10).unwrap();
        let expect = [2.0, 3.0, 0.0, 0.0, 0.0, -1.0, 0.0, 0.0, 0.5, 0.0];
        for (got, want) in theta.iter().zip(expect) {
            assert!((got - want).abs() < 1e-6, "theta {theta:?}");
        }
    }

    #[test]
    fn multi_output_columns_solve_independently() {
        let mut ne = NormalEquations::new(2);
        let mut f = [0.0; FEATURES];
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    let x = [
                        -1.0 + 2.0 * i as f64 / 3.0,
                        -1.0 + 2.0 * j as f64 / 3.0,
                        -1.0 + 2.0 * k as f64 / 3.0,
                    ];
                    poly_features(&x, &mut f);
                    ne.add(&f, &[x[0] + x[1], 4.0 * x[2] * x[2]]);
                }
            }
        }
        let theta = ne.solve(1e-10).unwrap();
        // Column 0: coefficients on x and y; column 1: coefficient on z².
        assert!((theta[2] - 1.0).abs() < 1e-6); // feature x, output 0
        assert!((theta[4] - 1.0).abs() < 1e-6); // feature y, output 0
        assert!((theta[13] - 4.0).abs() < 1e-6); // feature z², output 1
    }

    #[test]
    fn bad_lambda_is_an_error() {
        let ne = NormalEquations::new(1);
        assert!(ne.solve(0.0).is_err());
        let ne = NormalEquations::new(1);
        assert!(ne.solve(-1.0).is_err());
    }
}
