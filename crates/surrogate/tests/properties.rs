//! Property tests of the surrogate artifact and the tier contract.

use hbm_surrogate::{
    ExtractionSettings, SurrogateDomain, SurrogateModel, SurrogateQuery, ThermalTier,
    TieredExtractor, FEATURES,
};
use hbm_thermal::CfdConfig;
use hbm_units::{Duration, Power};
use proptest::prelude::*;

/// Tiny 2-server extraction family used by every property below.
fn settings() -> ExtractionSettings {
    ExtractionSettings {
        config: CfdConfig {
            racks: 1,
            servers_per_rack: 2,
            ..CfdConfig::paper_default()
        },
        spike: Power::from_watts(120.0),
        window: Duration::from_minutes(5.0),
        lag_step: Duration::from_minutes(1.0),
    }
}

/// A synthetic fitted model over `domain` with arbitrary coefficients —
/// the artifact round-trip must hold for any coefficient values, not just
/// ones a real fit would produce.
fn synthetic_model(
    domain: SurrogateDomain,
    coeff_seed: &[f64],
    bounds: (f64, f64, f64, f64),
) -> SurrogateModel {
    let settings = settings();
    let servers = settings.config.server_count();
    let lags = 5;
    let outputs = servers * servers * lags + servers;
    let coeffs: Vec<f64> = (0..FEATURES * outputs)
        .map(|i| {
            let s = coeff_seed[i % coeff_seed.len()];
            // Spread the seed values over wildly different magnitudes so the
            // shortest-round-trip encoder sees subnormal-adjacent and large
            // exponents, not just friendly decimals.
            s * 10f64.powi((i % 37) as i32 - 18)
        })
        .collect();
    SurrogateModel::from_parts(
        settings,
        domain,
        coeffs,
        18,
        9,
        (bounds.0, bounds.1),
        (bounds.2, bounds.3),
        1e-8,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The `hbm-surrogate-v1` artifact round-trips bit-exactly: parsing a
    /// serialized model reproduces every `f64` (coefficients, domain,
    /// bounds) to the bit, and re-serialization is byte-identical.
    #[test]
    fn artifact_round_trip_is_bit_exact(
        lo0 in 80.0..140.0f64,
        hi0 in 150.0..220.0f64,
        seeds in prop::collection::vec(-1.0..1.0f64, 7),
        max_r in 0.0..1e-3f64,
        max_i in 0.0..2.0f64,
    ) {
        let domain = SurrogateDomain { lo: [lo0, 24.5, 0.02], hi: [hi0, 30.5, 0.12] };
        let model = synthetic_model(domain, &seeds, (max_r, max_r / 3.0, max_i, max_i / 3.0));
        let line = model.to_flat_json();
        let parsed = SurrogateModel::from_flat_json(&line).unwrap();
        prop_assert_eq!(&parsed, &model);
        prop_assert_eq!(parsed.to_flat_json(), line);
    }

    /// Any query outside the trained domain takes the fallback path — the
    /// surrogate is never consulted, however generous the tolerance.
    #[test]
    fn out_of_domain_queries_always_fall_back(
        axis in 0usize..3,
        side in 0usize..2,
        frac in 0.05..3.0f64,
        seeds in prop::collection::vec(-0.5..0.5f64, 5),
    ) {
        let domain = SurrogateDomain { lo: [130.0, 26.0, 0.05], hi: [170.0, 28.0, 0.08] };
        let model = synthetic_model(domain, &seeds, (1e-6, 1e-7, 1e-3, 1e-4));
        let tier = TieredExtractor::with_model(model, f64::INFINITY);

        // Start from the domain center, push one axis outside the box —
        // but keep the query physically valid so extraction can answer.
        let mut x = [150.0, 27.0, 0.065];
        let width = domain.hi[axis] - domain.lo[axis];
        x[axis] = if side == 0 {
            domain.lo[axis] - frac * width
        } else {
            domain.hi[axis] + frac * width
        };
        x[0] = x[0].clamp(10.0, 400.0);
        x[1] = x[1].clamp(18.0, 32.0);
        x[2] = x[2].clamp(0.0, 0.49);
        let q = SurrogateQuery { baseline_w: x[0], supply_c: x[1], leakage: x[2] };
        // The clamps can never pull the pushed axis back inside this box.
        prop_assert!(!tier.model().unwrap().domain().contains(&q));

        let before = tier.stats();
        let (_, kind) = tier.model_for(&q).unwrap();
        let after = tier.stats();
        prop_assert_eq!(kind, ThermalTier::Extracted);
        prop_assert_eq!(after.fallbacks, before.fallbacks + 1);
        prop_assert_eq!(after.hits, before.hits);
    }
}

/// Corrupted artifacts are rejected with a message, never a panic.
#[test]
fn malformed_artifacts_are_rejected() {
    let domain = SurrogateDomain {
        lo: [130.0, 26.0, 0.05],
        hi: [170.0, 28.0, 0.08],
    };
    let model = synthetic_model(domain, &[0.25, -0.5, 0.75], (1e-6, 1e-7, 1e-3, 1e-4));
    let line = model.to_flat_json();

    assert!(SurrogateModel::from_flat_json("{}").is_err());
    assert!(SurrogateModel::from_flat_json("not json").is_err());
    let wrong_schema = line.replacen("hbm-surrogate-v1", "hbm-surrogate-v0", 1);
    assert!(SurrogateModel::from_flat_json(&wrong_schema).is_err());
    let wrong_servers = line.replacen("\"servers\":2", "\"servers\":3", 1);
    assert!(SurrogateModel::from_flat_json(&wrong_servers).is_err());
}
