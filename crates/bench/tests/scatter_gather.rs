//! Property-based equivalence of the scatter-on-arrival heat-matrix kernel
//! (`hbm_thermal::HeatMatrixModel`) with the pre-rewrite gather reference
//! (`hbm_bench::gather::GatherHeatMatrixModel`).
//!
//! The two kernels evaluate the same convolution in different summation
//! orders, so agreement is asserted at 1e-9 (see `docs/PERFORMANCE.md` for
//! the tolerance policy). Cases sweep server counts, lag counts, synthetic
//! response matrices (including negative entries), multi-source power
//! sequences, and a mid-run `reset()`.

use hbm_bench::gather::GatherHeatMatrixModel;
use hbm_thermal::{HeatMatrix, HeatMatrixModel};
use hbm_units::{Duration, Power, Temperature};
use proptest::prelude::*;

const TOL: f64 = 1e-9;

/// Upper bounds for the generated pools (the body truncates to the drawn
/// `servers`/`lags`/`steps`; the vendored proptest has no `prop_flat_map`,
/// so sizes cannot depend on other arguments at generation time).
const MAX_SERVERS: usize = 6;
const MAX_LAGS: usize = 8;
const MAX_STEPS: usize = 32;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scatter_matches_gather_with_mid_run_reset(
        servers in 1usize..MAX_SERVERS + 1,
        lags in 1usize..MAX_LAGS + 1,
        responses in prop::collection::vec(
            -0.002..0.01f64,
            MAX_SERVERS * MAX_SERVERS * MAX_LAGS,
        ),
        base_inlet in 20.0..30.0f64,
        supply in 18.0..26.0f64,
        steps in 2usize..MAX_STEPS + 1,
        sources_a in prop::collection::vec(0usize..MAX_SERVERS, MAX_STEPS),
        sources_b in prop::collection::vec(0usize..MAX_SERVERS, MAX_STEPS),
        watts_a in prop::collection::vec(-250.0..450.0f64, MAX_STEPS),
        watts_b in prop::collection::vec(-250.0..450.0f64, MAX_STEPS),
        reset_at in 0usize..MAX_STEPS,
    ) {
        let data: Vec<f64> = responses[..servers * servers * lags].to_vec();
        let matrix = HeatMatrix::from_raw(servers, lags, Duration::from_minutes(1.0), data);
        let baseline = vec![Power::from_watts(150.0); servers];
        let inlets: Vec<Temperature> = (0..servers)
            .map(|s| Temperature::from_celsius(base_inlet + 0.1 * s as f64))
            .collect();

        let mut scatter = HeatMatrixModel::new(
            matrix.clone(),
            baseline.clone(),
            inlets.clone(),
            Temperature::from_celsius(supply),
        );
        let mut reference = GatherHeatMatrixModel::new(
            matrix,
            baseline.clone(),
            inlets.iter().map(|t| t.as_celsius()).collect(),
            supply,
        );

        let mut out = vec![0.0; servers];
        for k in 0..steps {
            if k == reset_at {
                scatter.reset();
                reference.reset();
            }
            // Up to two deviating sources per step (they may collide, which
            // just doubles one deviation — also worth covering).
            let mut powers = baseline.clone();
            powers[sources_a[k] % servers] += Power::from_watts(watts_a[k]);
            powers[sources_b[k] % servers] += Power::from_watts(watts_b[k]);
            let want = reference.step(&powers);
            scatter.step_into(&powers, &mut out);
            for (s, (&a, &b)) in want.iter().zip(&out).enumerate() {
                prop_assert!(
                    (a - b).abs() <= TOL,
                    "step {k} server {s}: gather {a:.17e} vs scatter {b:.17e}"
                );
            }
        }
    }

    #[test]
    fn scatter_step_wrapper_matches_gather(
        servers in 1usize..MAX_SERVERS + 1,
        lags in 1usize..MAX_LAGS + 1,
        responses in prop::collection::vec(
            0.0..0.008f64,
            MAX_SERVERS * MAX_SERVERS * MAX_LAGS,
        ),
        watts in prop::collection::vec(-150.0..350.0f64, MAX_STEPS),
    ) {
        let data: Vec<f64> = responses[..servers * servers * lags].to_vec();
        let matrix = HeatMatrix::from_raw(servers, lags, Duration::from_minutes(1.0), data);
        let baseline = vec![Power::from_watts(150.0); servers];
        let inlets = vec![Temperature::from_celsius(25.0); servers];

        let mut scatter = HeatMatrixModel::new(
            matrix.clone(),
            baseline.clone(),
            inlets.clone(),
            Temperature::from_celsius(20.0),
        );
        let mut reference = GatherHeatMatrixModel::new(
            matrix,
            baseline.clone(),
            inlets.iter().map(|t| t.as_celsius()).collect(),
            20.0,
        );

        for (k, &w) in watts.iter().enumerate() {
            let mut powers = baseline.clone();
            powers[k % servers] += Power::from_watts(w);
            let want = reference.step(&powers);
            let got = scatter.step(&powers);
            for (s, (&a, b)) in want.iter().zip(&got).enumerate() {
                prop_assert!(
                    (a - b.as_celsius()).abs() <= TOL,
                    "step {k} server {s}: gather {a:.17e} vs scatter {:.17e}",
                    b.as_celsius()
                );
            }
        }
    }
}
