//! Criterion benchmark harness for the paper's tables and figures.
#![forbid(unsafe_code)]
