//! Criterion benchmark harness for the paper's tables and figures.
//!
//! Besides the (empty) crate root, this library carries two reference
//! implementations kept verbatim as benchmark baselines and equivalence
//! oracles for the optimized kernels in `hbm-thermal`:
//!
//! * [`nested`] — the pre-optimization `Vec<Vec<f64>>` CFD-lite kernel;
//! * [`gather`] — the pre-scatter heat-matrix convolution that re-summed
//!   `receivers × lags × sources` every step.
#![forbid(unsafe_code)]

pub mod gather {
    //! The original gather-convolution heat-matrix kernel, kept verbatim
    //! (minus the API it doesn't need) as the benchmark baseline and
    //! equivalence oracle for `hbm_thermal::HeatMatrixModel`'s
    //! scatter-on-arrival rewrite. Do not optimize this copy.
    //!
    //! The two kernels evaluate the same convolution in different summation
    //! orders (gather: newest age first; scatter: arrival order), so
    //! equivalence is asserted at 1e-9, not bit-for-bit — the policy is
    //! documented in `docs/PERFORMANCE.md`.

    use hbm_thermal::{HeatMatrix, HeatMatrixModel};
    use hbm_units::Power;

    /// Linear-superposition model evaluated with the pre-rewrite per-step
    /// gather: every step re-sums all `filled` history ages for every
    /// receiver.
    #[derive(Debug, Clone)]
    pub struct GatherHeatMatrixModel {
        matrix: HeatMatrix,
        /// The matrix's responses transposed to `[receiver][lag][source]`,
        /// so the convolution's inner (source) loop walks contiguous memory.
        resp_by_receiver: Vec<f64>,
        baseline_powers: Vec<Power>,
        baseline_inlets: Vec<f64>,
        supply_celsius: f64,
        /// Ring buffer of power deviations, `lags × servers` watts; slot
        /// `head` holds the newest step, ages increase from there.
        history: Vec<f64>,
        /// Ring slot of the newest deviation.
        head: usize,
        /// Number of valid history steps (≤ lag count).
        filled: usize,
    }

    impl GatherHeatMatrixModel {
        /// Creates the reference model around an operating point.
        ///
        /// # Panics
        ///
        /// Panics if vector lengths mismatch the matrix.
        pub fn new(
            matrix: HeatMatrix,
            baseline_powers: Vec<Power>,
            baseline_inlets: Vec<f64>,
            supply_celsius: f64,
        ) -> Self {
            let n = matrix.server_count();
            let lags = matrix.lag_count();
            assert_eq!(baseline_powers.len(), n);
            assert_eq!(baseline_inlets.len(), n);
            let mut resp_by_receiver = vec![0.0; n * n * lags];
            for source in 0..n {
                for receiver in 0..n {
                    for lag in 0..lags {
                        resp_by_receiver[(receiver * lags + lag) * n + source] =
                            matrix.response(source, receiver, lag);
                    }
                }
            }
            GatherHeatMatrixModel {
                matrix,
                resp_by_receiver,
                baseline_powers,
                baseline_inlets,
                supply_celsius,
                history: vec![0.0; lags * n],
                head: 0,
                filled: 0,
            }
        }

        /// Builds the reference model at the same operating point as an
        /// optimized [`HeatMatrixModel`].
        pub fn from_model(model: &HeatMatrixModel) -> Self {
            Self::new(
                model.matrix().clone(),
                model.baseline_powers().to_vec(),
                model.baseline_inlets_celsius().to_vec(),
                model.supply_celsius(),
            )
        }

        /// The deviation vector recorded `age` steps ago (0 = newest).
        fn history_slice(&self, age: usize) -> &[f64] {
            let n = self.matrix.server_count();
            let slot = (self.head + age) % self.matrix.lag_count();
            &self.history[slot * n..(slot + 1) * n]
        }

        /// Advances one lag step and returns the predicted inlets, °C.
        ///
        /// # Panics
        ///
        /// Panics if `powers.len()` mismatches the server count.
        pub fn step(&mut self, powers: &[Power]) -> Vec<f64> {
            let n = self.matrix.server_count();
            assert_eq!(powers.len(), n, "one power per server required");
            let lags = self.matrix.lag_count();

            // Rotate the ring backward: yesterday's newest slot becomes
            // age 1.
            self.head = (self.head + lags - 1) % lags;
            let newest = &mut self.history[self.head * n..(self.head + 1) * n];
            for (slot, (&p, &b)) in newest
                .iter_mut()
                .zip(powers.iter().zip(&self.baseline_powers))
            {
                *slot = (p - b).as_watts();
            }
            self.filled = (self.filled + 1).min(lags);

            (0..n)
                .map(|receiver| {
                    let mut t = self.baseline_inlets[receiver];
                    for age in 0..self.filled {
                        let dev = self.history_slice(age);
                        let resp = &self.resp_by_receiver[(receiver * lags + age) * n..][..n];
                        for (source, &dw) in dev.iter().enumerate() {
                            if dw != 0.0 {
                                t += resp[source] * dw;
                            }
                        }
                    }
                    t.max(self.supply_celsius)
                })
                .collect()
        }

        /// Clears the convolution history (back to the operating point).
        pub fn reset(&mut self) {
            self.filled = 0;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use hbm_thermal::{CfdConfig, CoolingSystem};
        use hbm_units::{Duration, Temperature};

        fn small_config() -> CfdConfig {
            CfdConfig {
                racks: 1,
                servers_per_rack: 4,
                cooling: CoolingSystem {
                    capacity: Power::from_kilowatts(0.8),
                    supply: Temperature::from_celsius(27.0),
                    derate_onset: Temperature::from_celsius(33.0),
                    derate_per_kelvin: 0.05,
                    min_capacity_fraction: 0.65,
                },
                per_server_flow_kg_s: 0.018,
                leakage_fraction: 0.06,
                cell_mass_kg: 0.5,
                plenum_mass_kg: 1.0,
            }
        }

        #[test]
        fn reference_matches_the_scatter_rewrite() {
            let config = small_config();
            let baseline = vec![Power::from_watts(150.0); 4];
            let mut scatter = HeatMatrixModel::from_cfd(
                &config,
                &baseline,
                Power::from_watts(120.0),
                Duration::from_minutes(5.0),
                Duration::from_minutes(1.0),
            );
            let mut reference = GatherHeatMatrixModel::from_model(&scatter);
            let mut out = vec![0.0; 4];
            for step in 0..50 {
                let powers: Vec<Power> = (0..4)
                    .map(|s| {
                        Power::from_watts(150.0 + 50.0 * ((s * 7 + step * 13) % 16) as f64 / 16.0)
                    })
                    .collect();
                let want = reference.step(&powers);
                scatter.step_into(&powers, &mut out);
                for (s, (&a, &b)) in want.iter().zip(&out).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-9,
                        "step {step} server {s}: gather {a} vs scatter {b}"
                    );
                }
            }
        }

        #[test]
        fn reference_matches_the_scatter_rewrite_across_reset() {
            let config = small_config();
            let baseline = vec![Power::from_watts(150.0); 4];
            let mut scatter = HeatMatrixModel::from_cfd(
                &config,
                &baseline,
                Power::from_watts(120.0),
                Duration::from_minutes(5.0),
                Duration::from_minutes(1.0),
            );
            let mut reference = GatherHeatMatrixModel::from_model(&scatter);
            let mut hot = baseline.clone();
            hot[1] += Power::from_watts(333.0);
            let mut out = vec![0.0; 4];
            for step in 0..20 {
                if step == 7 {
                    scatter.reset();
                    reference.reset();
                }
                let powers = if step % 3 == 0 { &hot } else { &baseline };
                let want = reference.step(powers);
                scatter.step_into(powers, &mut out);
                for (s, (&a, &b)) in want.iter().zip(&out).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-9,
                        "step {step} server {s}: gather {a} vs scatter {b}"
                    );
                }
            }
        }
    }
}

pub mod nested {
    //! The original nested-`Vec` CFD-lite kernel, kept verbatim (minus the
    //! public API it doesn't need) as the benchmark baseline for
    //! `hbm_thermal::CfdModel`. Do not optimize this copy.

    use hbm_thermal::CfdConfig;
    use hbm_units::{Duration, Power, Temperature};

    /// Specific heat of air, J/(kg·K).
    const CP_AIR: f64 = 1005.0;

    /// Transient CFD-lite state with the pre-rewrite `[rack][height]`
    /// nested-`Vec` layout and per-substep buffer clones.
    #[derive(Debug, Clone)]
    pub struct NestedCfdModel {
        config: CfdConfig,
        cold: Vec<Vec<f64>>,
        hot: Vec<Vec<f64>>,
        duct: f64,
        ret: f64,
        dt: f64,
    }

    impl NestedCfdModel {
        /// Creates a model at thermal equilibrium, exactly as
        /// `CfdModel::new` does.
        ///
        /// # Panics
        ///
        /// Panics if `config` fails validation.
        pub fn new(config: CfdConfig) -> Self {
            config.validate().expect("invalid CFD configuration");
            let sup = config.cooling.supply.as_celsius();
            let max_flow = config.servers_per_rack as f64
                * config.per_server_flow_kg_s
                * (1.0 - config.leakage_fraction)
                + config.per_server_flow_kg_s;
            let dt = (0.4 * config.cell_mass_kg / max_flow).min(0.5);
            NestedCfdModel {
                cold: vec![vec![sup; config.servers_per_rack]; config.racks],
                hot: vec![vec![sup; config.servers_per_rack]; config.racks],
                duct: sup,
                ret: sup,
                dt,
                config,
            }
        }

        /// Mean server inlet temperature.
        pub fn mean_inlet(&self) -> Temperature {
            let n = self.config.server_count() as f64;
            let sum: f64 = self.cold.iter().flatten().sum();
            Temperature::from_celsius(sum / n)
        }

        /// Advances the model by `span` with constant per-server powers.
        ///
        /// # Panics
        ///
        /// Panics if `powers.len()` differs from the server count.
        pub fn step(&mut self, powers: &[Power], span: Duration) {
            assert_eq!(
                powers.len(),
                self.config.server_count(),
                "one power per server required"
            );
            let mut remaining = span.as_seconds();
            while remaining > 0.0 {
                let h = remaining.min(self.dt);
                self.substep(powers, h);
                remaining -= h;
            }
        }

        fn substep(&mut self, powers: &[Power], h: f64) {
            let cfg = &self.config;
            let m = cfg.per_server_flow_kg_s;
            let lam = cfg.leakage_fraction;
            let keep = 1.0 - lam;
            let n_h = cfg.servers_per_rack;
            let rack_supply = n_h as f64 * m * keep;
            let cell_mass = cfg.cell_mass_kg;

            let ac_flow = cfg.ac_flow_kg_s();
            let capacity = cfg.cooling.effective_capacity(self.mean_inlet());
            let sup = cfg.cooling.supply.as_celsius();
            let q_needed = ac_flow * CP_AIR * (self.ret - sup).max(0.0);
            let q = q_needed.min(capacity.as_watts());
            let ac_out = self.ret - q / (ac_flow * CP_AIR);

            let duct_next = self.duct + h * ac_flow / cfg.plenum_mass_kg * (ac_out - self.duct);

            let mut cold_next = self.cold.clone();
            let mut hot_next = self.hot.clone();
            let mut return_inflow_temp = 0.0;

            for r in 0..cfg.racks {
                for i in 0..n_h {
                    let s = r * n_h + i;
                    let p = powers[s].as_watts();
                    let t_in = self.cold[r][i];
                    let t_out = t_in + p / (m * CP_AIR);

                    let below_t = if i == 0 {
                        self.duct
                    } else {
                        self.cold[r][i - 1]
                    };
                    let inflow_below = if i == 0 {
                        rack_supply
                    } else {
                        (n_h - i) as f64 * m * keep
                    };
                    let d_cold = inflow_below * (below_t - t_in) + lam * m * (t_out - t_in);
                    cold_next[r][i] = t_in + h * d_cold / cell_mass;

                    let t_hot = self.hot[r][i];
                    let hot_below_t = if i == 0 { t_hot } else { self.hot[r][i - 1] };
                    let hot_inflow_below = if i == 0 { 0.0 } else { i as f64 * m * keep };
                    let d_hot =
                        keep * m * (t_out - t_hot) + hot_inflow_below * (hot_below_t - t_hot);
                    hot_next[r][i] = t_hot + h * d_hot / cell_mass;
                }
                return_inflow_temp += self.hot[r][n_h - 1];
            }

            let mean_top = return_inflow_temp / cfg.racks as f64;
            let ret_next = self.ret + h * ac_flow / cfg.plenum_mass_kg * (mean_top - self.ret);

            self.cold = cold_next;
            self.hot = hot_next;
            self.duct = duct_next;
            self.ret = ret_next;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use hbm_thermal::CfdModel;

        #[test]
        fn reference_matches_the_flat_rewrite() {
            let config = CfdConfig::paper_default();
            let mut nested = NestedCfdModel::new(config);
            let mut flat = CfdModel::new(config);
            let n = config.server_count();
            for step in 0..50 {
                let powers: Vec<Power> = (0..n)
                    .map(|s| {
                        Power::from_watts(150.0 + 50.0 * ((s * 7 + step * 13) % 16) as f64 / 16.0)
                    })
                    .collect();
                nested.step(&powers, Duration::from_minutes(0.5));
                flat.step(&powers, Duration::from_minutes(0.5));
                let a = nested.mean_inlet().as_celsius();
                let b = flat.mean_inlet().as_celsius();
                assert!(
                    (a - b).abs() <= 1e-12,
                    "step {step}: nested {a} vs flat {b}"
                );
            }
        }
    }
}
