//! Criterion benchmark harness for the paper's tables and figures.
//!
//! Besides the (empty) crate root, this library carries the
//! [`nested`] reference implementation of the CFD-lite kernel — the
//! pre-optimization `Vec<Vec<f64>>` state layout — so the benchmarks can
//! measure the flat-buffer rewrite in `hbm-thermal` against the exact code
//! it replaced.
#![forbid(unsafe_code)]

pub mod nested {
    //! The original nested-`Vec` CFD-lite kernel, kept verbatim (minus the
    //! public API it doesn't need) as the benchmark baseline for
    //! `hbm_thermal::CfdModel`. Do not optimize this copy.

    use hbm_thermal::CfdConfig;
    use hbm_units::{Duration, Power, Temperature};

    /// Specific heat of air, J/(kg·K).
    const CP_AIR: f64 = 1005.0;

    /// Transient CFD-lite state with the pre-rewrite `[rack][height]`
    /// nested-`Vec` layout and per-substep buffer clones.
    #[derive(Debug, Clone)]
    pub struct NestedCfdModel {
        config: CfdConfig,
        cold: Vec<Vec<f64>>,
        hot: Vec<Vec<f64>>,
        duct: f64,
        ret: f64,
        dt: f64,
    }

    impl NestedCfdModel {
        /// Creates a model at thermal equilibrium, exactly as
        /// `CfdModel::new` does.
        ///
        /// # Panics
        ///
        /// Panics if `config` fails validation.
        pub fn new(config: CfdConfig) -> Self {
            config.validate().expect("invalid CFD configuration");
            let sup = config.cooling.supply.as_celsius();
            let max_flow = config.servers_per_rack as f64
                * config.per_server_flow_kg_s
                * (1.0 - config.leakage_fraction)
                + config.per_server_flow_kg_s;
            let dt = (0.4 * config.cell_mass_kg / max_flow).min(0.5);
            NestedCfdModel {
                cold: vec![vec![sup; config.servers_per_rack]; config.racks],
                hot: vec![vec![sup; config.servers_per_rack]; config.racks],
                duct: sup,
                ret: sup,
                dt,
                config,
            }
        }

        /// Mean server inlet temperature.
        pub fn mean_inlet(&self) -> Temperature {
            let n = self.config.server_count() as f64;
            let sum: f64 = self.cold.iter().flatten().sum();
            Temperature::from_celsius(sum / n)
        }

        /// Advances the model by `span` with constant per-server powers.
        ///
        /// # Panics
        ///
        /// Panics if `powers.len()` differs from the server count.
        pub fn step(&mut self, powers: &[Power], span: Duration) {
            assert_eq!(
                powers.len(),
                self.config.server_count(),
                "one power per server required"
            );
            let mut remaining = span.as_seconds();
            while remaining > 0.0 {
                let h = remaining.min(self.dt);
                self.substep(powers, h);
                remaining -= h;
            }
        }

        fn substep(&mut self, powers: &[Power], h: f64) {
            let cfg = &self.config;
            let m = cfg.per_server_flow_kg_s;
            let lam = cfg.leakage_fraction;
            let keep = 1.0 - lam;
            let n_h = cfg.servers_per_rack;
            let rack_supply = n_h as f64 * m * keep;
            let cell_mass = cfg.cell_mass_kg;

            let ac_flow = cfg.ac_flow_kg_s();
            let capacity = cfg.cooling.effective_capacity(self.mean_inlet());
            let sup = cfg.cooling.supply.as_celsius();
            let q_needed = ac_flow * CP_AIR * (self.ret - sup).max(0.0);
            let q = q_needed.min(capacity.as_watts());
            let ac_out = self.ret - q / (ac_flow * CP_AIR);

            let duct_next = self.duct + h * ac_flow / cfg.plenum_mass_kg * (ac_out - self.duct);

            let mut cold_next = self.cold.clone();
            let mut hot_next = self.hot.clone();
            let mut return_inflow_temp = 0.0;

            for r in 0..cfg.racks {
                for i in 0..n_h {
                    let s = r * n_h + i;
                    let p = powers[s].as_watts();
                    let t_in = self.cold[r][i];
                    let t_out = t_in + p / (m * CP_AIR);

                    let below_t = if i == 0 {
                        self.duct
                    } else {
                        self.cold[r][i - 1]
                    };
                    let inflow_below = if i == 0 {
                        rack_supply
                    } else {
                        (n_h - i) as f64 * m * keep
                    };
                    let d_cold = inflow_below * (below_t - t_in) + lam * m * (t_out - t_in);
                    cold_next[r][i] = t_in + h * d_cold / cell_mass;

                    let t_hot = self.hot[r][i];
                    let hot_below_t = if i == 0 { t_hot } else { self.hot[r][i - 1] };
                    let hot_inflow_below = if i == 0 { 0.0 } else { i as f64 * m * keep };
                    let d_hot =
                        keep * m * (t_out - t_hot) + hot_inflow_below * (hot_below_t - t_hot);
                    hot_next[r][i] = t_hot + h * d_hot / cell_mass;
                }
                return_inflow_temp += self.hot[r][n_h - 1];
            }

            let mean_top = return_inflow_temp / cfg.racks as f64;
            let ret_next = self.ret + h * ac_flow / cfg.plenum_mass_kg * (mean_top - self.ret);

            self.cold = cold_next;
            self.hot = hot_next;
            self.duct = duct_next;
            self.ret = ret_next;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use hbm_thermal::CfdModel;

        #[test]
        fn reference_matches_the_flat_rewrite() {
            let config = CfdConfig::paper_default();
            let mut nested = NestedCfdModel::new(config);
            let mut flat = CfdModel::new(config);
            let n = config.server_count();
            for step in 0..50 {
                let powers: Vec<Power> = (0..n)
                    .map(|s| {
                        Power::from_watts(150.0 + 50.0 * ((s * 7 + step * 13) % 16) as f64 / 16.0)
                    })
                    .collect();
                nested.step(&powers, Duration::from_minutes(0.5));
                flat.step(&powers, Duration::from_minutes(0.5));
                let a = nested.mean_inlet().as_celsius();
                let b = flat.mean_inlet().as_celsius();
                assert!(
                    (a - b).abs() <= 1e-12,
                    "step {step}: nested {a} vs flat {b}"
                );
            }
        }
    }
}
