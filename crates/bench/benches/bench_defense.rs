//! Defense benchmarks (Section VII): detector and monitor throughput — a
//! real operator runs these online, so per-slot cost matters.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hbm_defense::{reading_for, ServerCalorimeter, SlaMonitor, ThermalResidualDetector};
use hbm_thermal::ZoneModel;
use hbm_units::{Duration, Power, Temperature, TemperatureDelta};

fn defenses(c: &mut Criterion) {
    c.bench_function("residual_detector_observe", |b| {
        let mut detector = ThermalResidualDetector::new(
            ZoneModel::paper_default(),
            TemperatureDelta::from_celsius(0.8),
            3,
        );
        b.iter(|| {
            detector.observe(
                black_box(Power::from_kilowatts(7.0)),
                black_box(Temperature::from_celsius(27.5)),
                Duration::from_minutes(1.0),
            )
        });
    });

    c.bench_function("calorimeter_rack_sweep_40_servers", |b| {
        let calorimeter = ServerCalorimeter::new(Power::from_watts(40.0));
        let readings: Vec<_> = (0..40)
            .map(|i| {
                let actual = if i >= 36 { 450.0 } else { 180.0 };
                let metered = if i >= 36 { 200.0 } else { 180.0 };
                reading_for(
                    Power::from_watts(actual),
                    Power::from_watts(metered),
                    Temperature::from_celsius(27.0),
                    0.018,
                )
            })
            .collect();
        b.iter(|| calorimeter.flag_servers(black_box(&readings)));
    });

    c.bench_function("sla_monitor_observe", |b| {
        let mut monitor = SlaMonitor::new(0.0005, 0.001, 12.0);
        let mut k = 0u32;
        b.iter(|| {
            k = k.wrapping_add(1);
            monitor.observe(black_box(k % 300 < 5))
        });
    });
}

criterion_group!(benches, defenses);
criterion_main!(benches);
