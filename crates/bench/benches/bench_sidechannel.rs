//! Voltage-side-channel benchmarks (Fig. 5b): per-slot estimation and the
//! full error-distribution pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hbm_sidechannel::{stats::Histogram, SideChannelConfig, VoltageSideChannel};
use hbm_units::{Duration, Power};
use hbm_workload::{generate, TraceConfig};

fn side_channel(c: &mut Criterion) {
    c.bench_function("sidechannel_estimate_one_slot", |b| {
        let mut sc = VoltageSideChannel::new(SideChannelConfig::paper_default(), 1);
        b.iter(|| sc.estimate(black_box(Power::from_kilowatts(6.0))));
    });

    c.bench_function("fig5b_error_distribution_24h", |b| {
        let trace = generate(&TraceConfig {
            len: 1440,
            slot: Duration::from_minutes(1.0),
            ..TraceConfig::paper_default_year(1)
        });
        b.iter(|| {
            let mut sc = VoltageSideChannel::new(SideChannelConfig::paper_default(), 1);
            let pairs = sc.estimate_series(black_box(trace.samples()));
            let mut hist = Histogram::new(-0.5, 0.5, 40);
            hist.extend(pairs.iter().map(|(_, e)| e.as_kilowatts()));
            hist.total()
        });
    });
}

criterion_group!(benches, side_channel);
criterion_main!(benches);
