//! Battery-model benchmarks (Fig. 7b): charge/discharge stepping and the
//! UPS validation experiment.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use hbm_battery::{ups_experiment, Battery, BatteryBank, BatterySpec, UpsExperiment};
use hbm_units::{Duration, Power};

fn battery(c: &mut Criterion) {
    c.bench_function("battery_full_cycle", |b| {
        b.iter_batched(
            || Battery::empty(BatterySpec::paper_default()),
            |mut battery| {
                let dt = Duration::from_minutes(1.0);
                for _ in 0..70 {
                    battery.charge(black_box(Power::from_kilowatts(0.2)), dt);
                }
                for _ in 0..15 {
                    battery.discharge(black_box(Power::from_kilowatts(1.0)), dt);
                }
                battery.stored()
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("battery_bank_discharge_4_packs", |b| {
        b.iter_batched(
            || {
                BatteryBank::full(
                    BatterySpec::paper_default()
                        .with_capacity(hbm_units::Energy::from_kilowatt_hours(0.05)),
                    4,
                )
            },
            |mut bank| {
                bank.discharge(
                    black_box(Power::from_kilowatts(1.0)),
                    Duration::from_minutes(1.0),
                )
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("fig7b_ups_experiment", |b| {
        let exp = UpsExperiment::default();
        b.iter(|| ups_experiment(black_box(&exp)));
    });
}

criterion_group!(benches, battery);
criterion_main!(benches);
