//! Thermal-substrate benchmarks (Figs. 7a, 11a, 14a): the zone model, the
//! CFD-lite transient, heat-matrix extraction, and end-to-end simulator
//! throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use hbm_bench::gather::GatherHeatMatrixModel;
use hbm_bench::nested::NestedCfdModel;
use hbm_core::{
    BatchSim, ColoConfig, ForesightedPolicy, MyopicPolicy, Perturbation, Scenario, Simulation,
    StateTree,
};
use hbm_surrogate::{
    ExtractionSettings, FitOptions, SurrogateDomain, SurrogateModel, SurrogateQuery,
};
use hbm_telemetry::MemoryRecorder;
use hbm_thermal::{
    clear_heat_matrix_cache, extract_heat_matrix, CfdConfig, CfdModel, HeatMatrixModel, ZoneModel,
};
use hbm_units::{Duration, Power, Temperature};

fn zone_model(c: &mut Criterion) {
    c.bench_function("zone_step_one_minute", |b| {
        let mut zone = ZoneModel::paper_default();
        b.iter(|| {
            zone.step(
                black_box(Power::from_kilowatts(8.5)),
                Duration::from_minutes(1.0),
            )
        });
    });

    c.bench_function("zone_fig11a_overload_sweep", |b| {
        let zone = ZoneModel::paper_default();
        let t32 = Temperature::from_celsius(32.0);
        b.iter(|| {
            let mut total = Duration::ZERO;
            for kw in [0.25, 0.5, 1.0, 1.5, 2.0, 3.0] {
                total += zone.time_to_reach(t32, Power::from_kilowatts(black_box(kw)));
            }
            total
        });
    });

    c.bench_function("zone_fig14a_prototype_overload", |b| {
        b.iter_batched(
            ZoneModel::prototype,
            |mut zone| {
                let load = zone.cooling().capacity + Power::from_kilowatts(1.5);
                zone.step(black_box(load), Duration::from_minutes(5.0))
            },
            BatchSize::SmallInput,
        );
    });
}

fn cfd_model(c: &mut Criterion) {
    c.bench_function("cfd_step_one_minute_40_servers", |b| {
        let config = CfdConfig::paper_default();
        let mut cfd = CfdModel::new(config);
        let powers = vec![Power::from_watts(195.0); config.server_count()];
        b.iter(|| {
            cfd.step(black_box(&powers), Duration::from_minutes(1.0));
            cfd.mean_inlet()
        });
    });

    // Same kernel with the telemetry spans live: the delta against the run
    // above is the full cost of `--timings` instrumentation (one clock
    // read pair plus a mutex-guarded map update per step).
    c.bench_function("cfd_step_one_minute_40_servers_timed", |b| {
        let config = CfdConfig::paper_default();
        let mut cfd = CfdModel::new(config);
        let powers = vec![Power::from_watts(195.0); config.server_count()];
        hbm_telemetry::timing::set_timings_enabled(true);
        b.iter(|| {
            cfd.step(black_box(&powers), Duration::from_minutes(1.0));
            cfd.mean_inlet()
        });
        hbm_telemetry::timing::set_timings_enabled(false);
        hbm_telemetry::timing::reset_timings();
    });

    // The pre-rewrite nested-Vec kernel, same work as above: this is the
    // baseline the flat-buffer CfdModel is measured against.
    c.bench_function("cfd_step_one_minute_40_servers_nested_baseline", |b| {
        let config = CfdConfig::paper_default();
        let mut cfd = NestedCfdModel::new(config);
        let powers = vec![Power::from_watts(195.0); config.server_count()];
        b.iter(|| {
            cfd.step(black_box(&powers), Duration::from_minutes(1.0));
            cfd.mean_inlet()
        });
    });

    c.bench_function("heat_matrix_model_step_40_servers", |b| {
        let config = CfdConfig::paper_default();
        let n = config.server_count();
        let baseline = vec![Power::from_watts(150.0); n];
        let mut model = HeatMatrixModel::from_cfd(
            &config,
            &baseline,
            Power::from_watts(300.0),
            Duration::from_minutes(10.0),
            Duration::from_minutes(1.0),
        );
        let mut excursion = baseline.clone();
        excursion[3] = Power::from_watts(420.0);
        b.iter(|| model.step(black_box(&excursion)));
    });

    // Allocation-free entry point with a reused output buffer — the shape
    // hot loops are expected to use.
    c.bench_function("heat_matrix_model_step_into_40_servers", |b| {
        let config = CfdConfig::paper_default();
        let n = config.server_count();
        let baseline = vec![Power::from_watts(150.0); n];
        let mut model = HeatMatrixModel::from_cfd(
            &config,
            &baseline,
            Power::from_watts(300.0),
            Duration::from_minutes(10.0),
            Duration::from_minutes(1.0),
        );
        let mut excursion = baseline.clone();
        excursion[3] = Power::from_watts(420.0);
        let mut out = vec![0.0; n];
        b.iter(|| {
            model.step_into(black_box(&excursion), &mut out);
            out[0]
        });
    });

    // The pre-scatter gather kernel, same work as above: the baseline the
    // scatter-on-arrival HeatMatrixModel is measured against.
    c.bench_function("heat_matrix_model_step_40_servers_gather_baseline", |b| {
        let config = CfdConfig::paper_default();
        let n = config.server_count();
        let baseline = vec![Power::from_watts(150.0); n];
        let model = HeatMatrixModel::from_cfd(
            &config,
            &baseline,
            Power::from_watts(300.0),
            Duration::from_minutes(10.0),
            Duration::from_minutes(1.0),
        );
        let mut reference = GatherHeatMatrixModel::from_model(&model);
        let mut excursion = baseline.clone();
        excursion[3] = Power::from_watts(420.0);
        b.iter(|| reference.step(black_box(&excursion)));
    });

    let mut group = c.benchmark_group("matrix");
    group.sample_size(10);
    let small = CfdConfig {
        racks: 1,
        servers_per_rack: 4,
        ..CfdConfig::paper_default()
    };
    let baseline = vec![Power::from_watts(150.0); 4];
    let extract = |config: &CfdConfig| {
        extract_heat_matrix(
            black_box(config),
            &baseline,
            Power::from_watts(120.0),
            Duration::from_minutes(5.0),
            Duration::from_minutes(1.0),
        )
    };
    group.bench_function("heat_matrix_extraction_4_servers_cold", |b| {
        // Clearing per iteration keeps this measuring the actual CFD
        // spike-response extraction, not the memoized lookup.
        b.iter_batched(
            clear_heat_matrix_cache,
            |()| extract(&small),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("heat_matrix_extraction_4_servers_cached", |b| {
        let _ = extract(&small); // prime the cache
        b.iter(|| extract(&small));
    });
    group.finish();
}

/// Surrogate-tier predict against the extraction it replaces: the same
/// 4-server family, 120 W spike, and 1-minute lag schedule as the `matrix`
/// group, so `surrogate/predict_4_servers` reads directly against
/// `matrix/heat_matrix_extraction_4_servers_cold` in BENCH_thermal.json.
fn surrogate(c: &mut Criterion) {
    let mut group = c.benchmark_group("surrogate");
    let settings = ExtractionSettings {
        config: CfdConfig {
            racks: 1,
            servers_per_rack: 4,
            ..CfdConfig::paper_default()
        },
        spike: Power::from_watts(120.0),
        window: Duration::from_minutes(5.0),
        lag_step: Duration::from_minutes(1.0),
    };
    let domain = SurrogateDomain {
        lo: [100.0, 24.0, 0.02],
        hi: [200.0, 30.0, 0.12],
    };
    let model =
        SurrogateModel::fit(settings, domain, FitOptions::default()).expect("bench surrogate fits");
    let query = SurrogateQuery {
        baseline_w: 150.0,
        supply_c: 27.0,
        leakage: 0.08,
    };
    group.bench_function("predict_4_servers", |b| {
        b.iter(|| model.predict(black_box(&query)));
    });
    group.finish();
}

/// End-to-end steady-loop throughput: one simulated minute-slot per
/// iteration (median_ns → slots/sec is printed by
/// `scripts/bench_summary.sh`). The paper-default colocation (40 servers),
/// learning attacker, wrapping two-day trace.
fn sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_step_slots_per_sec");
    group.sample_size(20);

    group.bench_function("recorder_off", |b| {
        let config = ColoConfig::paper_default().with_trace_len(2 * 1440);
        let mut sim = Simulation::new(
            config,
            Box::new(ForesightedPolicy::paper_default(14.0, 1)),
            1,
        );
        sim.warmup(1440);
        b.iter(|| black_box(sim.step()));
    });

    group.bench_function("recorder_on", |b| {
        let config = ColoConfig::paper_default().with_trace_len(2 * 1440);
        let mut sim = Simulation::new(
            config,
            Box::new(ForesightedPolicy::paper_default(14.0, 1)),
            1,
        );
        sim.warmup(1440);
        sim.set_recorder(Box::new(MemoryRecorder::new()));
        b.iter(|| black_box(sim.step()));
    });

    group.finish();
}

/// Fleet-scale aggregate throughput: one iteration advances all 1000 sites
/// by one slot, so aggregate slots/sec = 1000 × 1e9 / median_ns (the
/// headline `scripts/bench_summary.sh` prints). The batched engine and the
/// independent baseline step identical fleets — Fleet's seed schedule, the
/// myopic always-on attacker — so the ratio is pure engine speedup.
fn fleet_throughput(c: &mut Criterion) {
    const SITES: usize = 1000;
    let fleet = || -> Vec<Simulation> {
        let config = ColoConfig::paper_default().with_trace_len(2 * 1440);
        (0..SITES)
            .map(|i| {
                let seed = 1u64.wrapping_add(1 + i as u64 * 1299721);
                Simulation::new(
                    config.clone(),
                    Box::new(MyopicPolicy::new(Power::from_kilowatts(7.4))),
                    seed,
                )
            })
            .collect()
    };

    let mut group = c.benchmark_group("fleet_slots_per_sec");
    group.sample_size(10);

    group.bench_function("batched", |b| {
        let mut batch = BatchSim::new(fleet());
        b.iter(|| black_box(batch.step_all()));
    });

    group.bench_function("independent_baseline", |b| {
        let mut sims = fleet();
        b.iter(|| {
            let mut down = 0u32;
            for sim in &mut sims {
                down += u32::from(sim.step().outage);
            }
            black_box(down)
        });
    });

    group.finish();
}

/// Learning-fleet aggregate throughput: the same shape as
/// `fleet_slots_per_sec`, but every site runs the foresighted Q-learning
/// attacker with the teacher phase disabled, so each slot performs the
/// full learning step — ε/learning-rate schedule evaluation, ε-greedy
/// action selection, and the TD update. The batched engine packs all 1000
/// Q-tables into one lane-major matrix and sweeps the schedules as packed
/// columns; the independent baseline steps the identical fleet through the
/// scalar learner, so the ratio is pure learning-lane speedup.
fn learning_fleet_throughput(c: &mut Criterion) {
    const SITES: usize = 1000;
    let fleet = || -> Vec<Simulation> {
        let config = ColoConfig::paper_default().with_trace_len(2 * 1440);
        (0..SITES)
            .map(|i| {
                let seed = 1u64.wrapping_add(1 + i as u64 * 1299721);
                let mut policy = ForesightedPolicy::paper_default(14.0, seed);
                policy.set_teacher(Power::from_kilowatts(7.56), 0);
                Simulation::new(config.clone(), Box::new(policy), seed)
            })
            .collect()
    };

    let mut group = c.benchmark_group("learning_fleet_slots_per_sec");
    group.sample_size(10);

    group.bench_function("batched", |b| {
        let mut batch = BatchSim::new(fleet());
        assert!(batch.learning_devirtualized());
        b.iter(|| black_box(batch.step_all()));
    });

    group.bench_function("independent", |b| {
        let mut sims = fleet();
        b.iter(|| {
            let mut down = 0u32;
            for sim in &mut sims {
                down += u32::from(sim.step().outage);
            }
            black_box(down)
        });
    });

    group.finish();
}

/// What-if branching cost: answering "what if the attack intensifies at
/// slot 7200?" by forking the live run (`Simulation::fork` + a
/// [`StateTree`] branch stepped 60 slots) versus re-simulating the whole
/// 7200-slot prefix from slot 0 and then stepping the same 60 slots. The
/// ratio of the two medians is the fork speedup `scripts/perf_guard.sh`
/// gates (the fork must stay ≥ cheap relative to the rerun).
fn fork_vs_rerun(c: &mut Criterion) {
    const FORK_SLOT: u64 = 7200;
    const BRANCH_SLOTS: u64 = 60;
    let scenario = {
        let mut s = Scenario::new("myopic");
        s.days = 6;
        s.warmup_days = 0;
        s.seed = 1;
        s
    };
    let hotter = Perturbation {
        attack_load_kw: Some(3.0),
        battery_kwh: Some(1.0),
        ..Perturbation::default()
    };

    let mut group = c.benchmark_group("fork_vs_rerun");
    group.sample_size(10);

    group.bench_function("fork", |b| {
        let (mut trunk, _) = scenario.build_sim().expect("bench scenario builds");
        trunk.run(FORK_SLOT);
        b.iter(|| {
            let mut tree = StateTree::new(trunk.fork(), scenario.clone());
            tree.branch("hotter", &hotter).expect("branch applies");
            tree.run(BRANCH_SLOTS);
            black_box(tree.first_divergence())
        });
    });

    group.bench_function("rerun", |b| {
        b.iter(|| {
            let (mut sim, _) = scenario.build_sim().expect("bench scenario builds");
            sim.run(FORK_SLOT + BRANCH_SLOTS);
            black_box(sim.metrics().slots)
        });
    });

    group.finish();
}

criterion_group!(
    benches,
    zone_model,
    cfd_model,
    surrogate,
    sim_throughput,
    fleet_throughput,
    learning_fleet_throughput,
    fork_vs_rerun
);
criterion_main!(benches);
