//! Latency-model benchmarks (Figs. 11d, 14b, 15): the power-cap/load sweep
//! that regenerates the performance-degradation curves.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hbm_workload::latency::LatencyModel;

fn latency(c: &mut Criterion) {
    c.bench_function("latency_t95_single_eval", |b| {
        let m = LatencyModel::web_service();
        b.iter(|| m.t95_millis(black_box(0.6), black_box(0.4)));
    });

    c.bench_function("fig15_full_sweep", |b| {
        let models = [LatencyModel::web_service(), LatencyModel::web_search()];
        b.iter(|| {
            let mut acc = 0.0;
            for m in &models {
                for step in 0..=20 {
                    let p = 0.4 + 0.03 * step as f64;
                    for load in [0.3, 0.4, 0.45] {
                        acc += m.t95_normalized_to_sla(black_box(p), black_box(load));
                    }
                }
            }
            acc
        });
    });
}

criterion_group!(benches, latency);
criterion_main!(benches);
