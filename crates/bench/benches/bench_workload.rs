//! Workload-generation benchmarks (Figs. 6b, 13a): default and alternate
//! trace synthesis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hbm_workload::{generate, TraceConfig, TraceShape};

fn traces(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    for shape in TraceShape::ALL {
        for (label, days) in [("day", 1usize), ("month", 30)] {
            group.bench_with_input(
                BenchmarkId::new(shape.to_string(), label),
                &days,
                |b, &days| {
                    let mut config = TraceConfig::paper_default_year(1);
                    config.shape = shape;
                    config.len = days * 1440;
                    b.iter(|| generate(black_box(&config)));
                },
            );
        }
    }
    group.finish();

    c.bench_function("trace_year_generation", |b| {
        let config = TraceConfig::paper_default_year(1);
        b.iter(|| generate(black_box(&config)).mean());
    });
}

criterion_group!(benches, traces);
criterion_main!(benches);
