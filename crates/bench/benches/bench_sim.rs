//! End-to-end simulator benchmarks (Table I defaults; Figs. 8, 9, 11, 12,
//! 13): one simulated day per attack policy, plus the one-shot scenario.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use hbm_battery::BatterySpec;
use hbm_core::{
    ColoConfig, ForesightedPolicy, MyopicPolicy, OneShotPolicy, RandomPolicy, Simulation,
};
use hbm_units::Power;

const DAY: u64 = 1440;

fn sim_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_one_day");
    group.sample_size(20);

    group.bench_function("baseline_no_attack", |b| {
        b.iter_batched(
            || {
                let config = ColoConfig::paper_default().with_trace_len(2 * DAY as usize);
                Simulation::new(
                    config,
                    Box::new(MyopicPolicy::new(Power::from_kilowatts(99.0))),
                    1,
                )
            },
            |mut sim| black_box(sim.run(DAY)),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("random_policy", |b| {
        b.iter_batched(
            || {
                let config = ColoConfig::paper_default().with_trace_len(2 * DAY as usize);
                let policy = RandomPolicy::new(0.08, config.attack_load, config.slot, 1);
                Simulation::new(config, Box::new(policy), 1)
            },
            |mut sim| black_box(sim.run(DAY)),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("myopic_policy", |b| {
        b.iter_batched(
            || {
                let config = ColoConfig::paper_default().with_trace_len(2 * DAY as usize);
                Simulation::new(
                    config,
                    Box::new(MyopicPolicy::new(Power::from_kilowatts(7.4))),
                    1,
                )
            },
            |mut sim| black_box(sim.run(DAY)),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("foresighted_learning", |b| {
        b.iter_batched(
            || {
                let config = ColoConfig::paper_default().with_trace_len(2 * DAY as usize);
                Simulation::new(
                    config,
                    Box::new(ForesightedPolicy::paper_default(14.0, 1)),
                    1,
                )
            },
            |mut sim| black_box(sim.run(DAY)),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("one_shot_scenario", |b| {
        b.iter_batched(
            || {
                let mut config = ColoConfig::paper_default().with_trace_len(2 * DAY as usize);
                config.battery = BatterySpec::one_shot();
                config.attack_load = Power::from_kilowatts(3.0);
                Simulation::new(
                    config,
                    Box::new(OneShotPolicy::new(Power::from_kilowatts(7.6))),
                    1,
                )
            },
            |mut sim| black_box(sim.run(DAY)),
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, sim_day);
criterion_main!(benches);
