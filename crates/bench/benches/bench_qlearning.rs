//! Reinforcement-learning benchmarks (Fig. 10): batch Q-learning update and
//! selection throughput at the attacker's state-space size, with standard
//! Q-learning as the ablation baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hbm_rl::{BatchQLearning, QLearning};

const STATES: usize = 10 * 16 * 4; // battery × load × temperature bins
const ACTIONS: usize = 3;

fn post(s: usize, a: usize) -> usize {
    // A cheap stand-in for the attacker's battery-shift post-state map.
    match a {
        0 => (s + 64).min(STATES - 1),
        1 => s.saturating_sub(64),
        _ => s,
    }
}

fn qlearning(c: &mut Criterion) {
    let allowed = [0usize, 1, 2];

    c.bench_function("batch_q_select_greedy", |b| {
        let agent = BatchQLearning::new(STATES, ACTIONS, STATES, 0.99);
        let mut s = 0usize;
        b.iter(|| {
            s = (s + 17) % STATES;
            agent.select_greedy(black_box(s), &allowed, post)
        });
    });

    c.bench_function("batch_q_update", |b| {
        let mut agent = BatchQLearning::new(STATES, ACTIONS, STATES, 0.99);
        let mut s = 0usize;
        b.iter(|| {
            let a = s % ACTIONS;
            let s_next = (s + 31) % STATES;
            agent.update(black_box(s), a, 1.0, s_next, &allowed, post, 0.05);
            s = s_next;
        });
    });

    c.bench_function("standard_q_update_baseline", |b| {
        let mut agent = QLearning::new(STATES, ACTIONS, 0.99);
        let mut s = 0usize;
        b.iter(|| {
            let a = s % ACTIONS;
            let s_next = (s + 31) % STATES;
            agent.update(black_box(s), a, 1.0, s_next, &allowed, 0.05);
            s = s_next;
        });
    });
}

criterion_group!(benches, qlearning);
criterion_main!(benches);
