//! Wide-area coordinated attack: one-shot attackers embedded in several
//! edge colocations of a metro area fire around their (correlated) daily
//! peaks, clustering the outages into a wide-area service interruption —
//! the scenario the paper flags for safety-critical edge applications
//! (Section III-C).
//!
//! ```sh
//! cargo run --release --example coordinated_fleet
//! ```

use hbm_core::coordinated_one_shot;

fn main() {
    let sites = 6;
    println!("simulating {sites} edge colocations over three days…");
    // A wide-area interruption = fewer than half the sites up.
    let report = coordinated_one_shot(sites, 1, 3 * 24 * 60, 0.5);

    println!(
        "sites taken down at least once: {}/{sites}",
        report.sites_hit
    );
    println!(
        "slots with ≥1 site down:        {:>6} min",
        report.any_down_slots
    );
    println!(
        "wide-area interruption:         {:>6} min total, longest {:.0} min contiguous",
        report.interruption_slots,
        report.longest_interruption.as_minutes()
    );

    for (i, site) in report.sites.iter().enumerate() {
        println!(
            "  site {i}: {} outage(s), {} min of downtime",
            site.metrics.outage_events, site.metrics.outage_slots
        );
    }

    if report.wide_area_interrupted() {
        println!(
            "\nbecause every site peaks with the same metro-wide diurnal pattern, the\n\
             independent one-shot attacks cluster — an edge application that fails over\n\
             between these sites has nowhere to go."
        );
    }
}
