//! Quickstart: simulate one week of a Myopic thermal-attack campaign
//! against the paper's default 8 kW edge colocation and print what the
//! operator would (and would not) see.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hbm_core::{ColoConfig, MyopicPolicy, Simulation};
use hbm_units::Power;

fn main() {
    // Table I defaults: 8 kW capacity, 4 tenants, 40 servers, a 0.8 kW
    // attacker with a 0.2 kWh built-in battery injecting 1 kW per attack.
    let config = ColoConfig::paper_default();

    // The greedy baseline: attack whenever the side-channel estimate of the
    // total load reaches 7.4 kW and the battery has energy.
    let policy = MyopicPolicy::new(Power::from_kilowatts(7.4));

    let mut sim = Simulation::new(config, Box::new(policy), 42);
    let (report, records) = sim.run_recorded(7 * 24 * 60); // one week

    let m = &report.metrics;
    println!("== one week of `{}` attacks ==", report.policy);
    println!(
        "attack time          {:>8.2} h/day",
        m.attack_hours_per_day()
    );
    println!(
        "thermal emergencies  {:>8} events, {:.3} % of the week",
        m.emergency_events,
        100.0 * m.emergency_fraction()
    );
    println!(
        "tenant impact        {:>8.2}x 95th-percentile latency during emergencies",
        m.mean_emergency_degradation()
    );
    println!(
        "behind the meter     {:>8.2} kWh of heat the operator never metered",
        m.behind_the_meter_energy().as_kilowatt_hours()
    );

    // The signature slot: actual heat above metered power.
    if let Some(r) = records.iter().find(|r| r.attack_load > Power::ZERO) {
        println!(
            "\nexample attack slot (minute {}): metered {:.2} kW, actual {:.2} kW, inlet {:.1} °C",
            r.slot,
            r.metered_total.as_kilowatts(),
            r.actual_total.as_kilowatts(),
            r.inlet.as_celsius()
        );
    }
}
