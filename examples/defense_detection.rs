//! The defender's view: run a thermal-attack campaign and show that the
//! Section VII defenses catch it — the power/temperature residual detector
//! flags attack runs within minutes, and per-server calorimetry pinpoints
//! the attacker's servers.
//!
//! ```sh
//! cargo run --release --example defense_detection
//! ```

use hbm_core::{ColoConfig, MyopicPolicy, Simulation};
use hbm_defense::{reading_for, ServerCalorimeter, ThermalResidualDetector};
use hbm_thermal::ZoneModel;
use hbm_units::{Power, TemperatureDelta};

fn main() {
    let config = ColoConfig::paper_default();
    let policy = MyopicPolicy::new(Power::from_kilowatts(7.4));
    let mut sim = Simulation::new(config.clone(), Box::new(policy), 3);
    let (_, records) = sim.run_recorded(14 * 24 * 60);

    // The operator's digital twin: same thermal model, fed METERED power.
    let mut detector = ThermalResidualDetector::new(
        ZoneModel::new(
            config.cooling,
            config.zone_heat_capacity_j_per_k,
            config.zone_pulldown_w_per_k,
        ),
        TemperatureDelta::from_celsius(0.8),
        3,
    );

    // Count only sustained (≥3-minute) runs: one-minute battery dribbles
    // can neither outlast the emergency dwell nor the detector's
    // consecutive-slot requirement — they are noise on both sides.
    let mut attack_runs = 0;
    let mut flagged = 0;
    let mut i = 0;
    while i < records.len() {
        let r = &records[i];
        if r.attack_load == Power::ZERO {
            detector.observe(r.metered_total, r.inlet, config.slot);
            i += 1;
            continue;
        }
        let len = records[i..]
            .iter()
            .take_while(|r| r.attack_load > Power::ZERO)
            .count();
        let mut caught = false;
        for r in &records[i..i + len] {
            caught |= detector.observe(r.metered_total, r.inlet, config.slot);
        }
        if len >= 3 {
            attack_runs += 1;
            if caught {
                flagged += 1;
            }
        }
        i += len;
    }
    println!("residual detector: flagged {flagged}/{attack_runs} sustained (≥3 min) attack runs over two weeks");

    // Pinpointing: during an attack, the four attack servers each emit
    // 450 W of heat against 200 W of metered power.
    let calorimeter = ServerCalorimeter::new(Power::from_watts(40.0));
    let r = records
        .iter()
        .find(|r| r.attack_load > Power::from_watts(900.0))
        .expect("campaign contains full-load attacks");
    let benign_share = r.benign_actual / config.benign_server_count() as f64;
    let mut readings: Vec<_> = (0..config.benign_server_count())
        .map(|_| reading_for(benign_share, benign_share, r.inlet, 0.018))
        .collect();
    for _ in 0..config.attacker_servers {
        let actual = (config.attacker_capacity + r.attack_load) / config.attacker_servers as f64;
        let metered = config.attacker_capacity / config.attacker_servers as f64;
        readings.push(reading_for(actual, metered, r.inlet, 0.018));
    }
    let suspicious = calorimeter.flag_servers(&readings);
    println!("calorimetry: servers {suspicious:?} emit more heat than their meters account for");
    assert_eq!(suspicious.len(), config.attacker_servers);
    println!("→ with outlet airflow metering, the attacker is identified, not just detected.");
}
