//! A full Foresighted (batch Q-learning) campaign: warm up the attacker's
//! tables, run a measured quarter, and inspect both the damage and the
//! learnt policy structure (the paper's Fig. 10).
//!
//! ```sh
//! cargo run --release --example foresighted_campaign
//! ```

use hbm_core::{AttackAction, ColoConfig, CostModel, ForesightedPolicy, Simulation};

fn main() {
    let config = ColoConfig::paper_default();
    let policy = ForesightedPolicy::paper_default(14.0, 1);

    let mut sim = Simulation::new(config.clone(), Box::new(policy), 1);

    // Offline initialization + online convergence (the paper reports
    // convergence within 1–4 weeks after its offline warm start).
    println!("warming up the Q tables (120 simulated days)…");
    sim.warmup(120 * 24 * 60);

    println!("measuring one quarter…");
    let report = sim.run(90 * 24 * 60);
    let m = &report.metrics;
    println!(
        "attack {:.2} h/day, {} emergencies ({:.3} % of time), latency x{:.2} during them",
        m.attack_hours_per_day(),
        m.emergency_events,
        100.0 * m.emergency_fraction(),
        m.mean_emergency_degradation()
    );

    // Annualized cost of the campaign (Section VI-C).
    let costs = CostModel::paper_default().yearly_report(
        m,
        config.attacker_capacity,
        config.attacker_servers,
        m.attacker_metered_energy,
    );
    println!(
        "attacker spends ${:.0}/yr; victims lose ≈${:.0}/yr in degraded performance",
        costs.attacker_total(),
        costs.victim_performance
    );

    // The learnt policy: attack only when battery AND load are high.
    let policy = sim
        .policy()
        .as_any()
        .downcast_ref::<ForesightedPolicy>()
        .expect("the simulation runs a Foresighted policy");
    println!("\nlearnt policy (rows: battery high→low; columns: load low→high):");
    for (b, row) in policy.policy_matrix().iter().enumerate().rev() {
        let line: String = row
            .iter()
            .map(|a| match a {
                AttackAction::Attack => 'A',
                AttackAction::Charge => 'C',
                AttackAction::Standby => '.',
            })
            .collect();
        println!(
            "  battery {:>3.0} %  {line}",
            100.0 * policy.battery_bin_centers()[b]
        );
    }
}
