//! One-shot attack walk-through (the paper's Fig. 8 scenario): a 3 kW
//! battery-backed load launched at a high-load moment drives the server
//! inlet temperature past the 45 °C shutdown limit and takes the whole
//! colocation down — even though the attacker's *metered* draw never
//! exceeds its subscription.
//!
//! ```sh
//! cargo run --release --example one_shot_outage
//! ```

use hbm_battery::BatterySpec;
use hbm_core::{ColoConfig, OneShotPolicy, Simulation};
use hbm_units::Power;

fn main() {
    let mut config = ColoConfig::paper_default();
    // One-shot hardware: 950 W peak per server (multi-GPU), a bigger pack.
    config.battery = BatterySpec::one_shot();
    config.attack_load = Power::from_kilowatts(3.0);

    let policy = OneShotPolicy::new(Power::from_kilowatts(7.6));
    let mut sim = Simulation::new(config, Box::new(policy), 7);
    let (report, records) = sim.run_recorded(3 * 24 * 60);

    let trigger = records
        .iter()
        .position(|r| r.attack_load > Power::ZERO)
        .expect("the attack should launch within three days");

    println!("minute  metered  actual  inlet    state");
    for (i, r) in records[trigger.saturating_sub(3)..]
        .iter()
        .take(14)
        .enumerate()
    {
        let state = if r.outage {
            "OUTAGE"
        } else if r.capping {
            "capping"
        } else if r.attack_load > Power::ZERO {
            "attacking"
        } else {
            ""
        };
        println!(
            "{:>5}   {:5.2}kW  {:5.2}kW  {:5.1}°C  {state}",
            i,
            r.metered_total.as_kilowatts(),
            r.actual_total.as_kilowatts(),
            r.inlet.as_celsius()
        );
    }

    assert!(report.metrics.outage_events >= 1);
    println!(
        "\nsystem outages: {}  (downtime {:.0} minutes each)",
        report.metrics.outage_events,
        report.metrics.outage_slots as f64 / report.metrics.outage_events as f64
    );
    println!("the metered load never exceeded the attacker's 0.8 kW subscription.");
}
