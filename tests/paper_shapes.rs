//! "Shape" tests: the qualitative findings of the paper's evaluation that
//! this reproduction must preserve (who wins, what saturates, what
//! collapses), checked end-to-end on shortened horizons.

use hbm_core::{ColoConfig, ForesightedPolicy, MyopicPolicy, RandomPolicy, SimReport, Simulation};
use hbm_thermal::ZoneModel;
use hbm_units::{Power, Temperature};

const MEASURE_DAYS: u64 = 45;
const WARMUP_DAYS: u64 = 120;

fn run_myopic(threshold_kw: f64) -> SimReport {
    let config = ColoConfig::paper_default();
    let policy = MyopicPolicy::new(Power::from_kilowatts(threshold_kw));
    let mut sim = Simulation::new(config, Box::new(policy), 1);
    sim.run(MEASURE_DAYS * 1440)
}

fn run_random(p: f64) -> SimReport {
    let config = ColoConfig::paper_default();
    let policy = RandomPolicy::new(p, config.attack_load, config.slot, 1);
    let mut sim = Simulation::new(config, Box::new(policy), 1);
    sim.run(MEASURE_DAYS * 1440)
}

fn run_foresighted(w: f64) -> SimReport {
    let config = ColoConfig::paper_default();
    let policy = ForesightedPolicy::paper_default(w, 1);
    let mut sim = Simulation::new(config, Box::new(policy), 1);
    sim.warmup(WARMUP_DAYS * 1440);
    sim.run(MEASURE_DAYS * 1440)
}

/// Fig. 9 / Fig. 11c: Random fails to create thermal emergencies even while
/// attacking a lot.
#[test]
fn random_attacks_create_no_emergencies() {
    let report = run_random(0.08);
    assert!(report.metrics.attack_hours_per_day() > 1.0);
    assert_eq!(report.metrics.emergency_events, 0);
}

/// Fig. 11b: more random attacks still raise the average temperature.
#[test]
fn random_delta_t_grows_with_attack_probability() {
    let low = run_random(0.03);
    let high = run_random(0.15);
    assert!(high.metrics.avg_delta_t() > low.metrics.avg_delta_t());
}

/// Fig. 11c: Myopic peaks at a sweet-spot threshold and *collapses* when it
/// attacks more aggressively (premature attacks deplete the battery).
#[test]
fn myopic_collapses_past_its_sweet_spot() {
    let sweet = run_myopic(7.4);
    let premature = run_myopic(7.0);
    assert!(
        premature.metrics.attack_hours_per_day() > sweet.metrics.attack_hours_per_day(),
        "lower threshold must attack more"
    );
    assert!(
        premature.metrics.emergency_fraction() < sweet.metrics.emergency_fraction() * 0.5,
        "premature attacks must produce far fewer emergencies: {} vs {}",
        premature.metrics.emergency_fraction(),
        sweet.metrics.emergency_fraction()
    );
}

/// Fig. 11c: Foresighted sustains its impact with increasing attack budget
/// (w), instead of collapsing like Myopic.
#[test]
fn foresighted_saturates_instead_of_collapsing() {
    let moderate = run_foresighted(9.0);
    let aggressive = run_foresighted(30.0);
    assert!(moderate.metrics.emergency_events > 0);
    assert!(
        aggressive.metrics.emergency_fraction() >= moderate.metrics.emergency_fraction() * 0.6,
        "more aggressive Foresighted must not collapse: {} vs {}",
        aggressive.metrics.emergency_fraction(),
        moderate.metrics.emergency_fraction()
    );
}

/// Fig. 11c at matched (high) attack budgets: Foresighted beats Myopic.
#[test]
fn foresighted_beats_myopic_at_high_attack_budget() {
    let foresighted = run_foresighted(14.0);
    let myopic = run_myopic(7.0); // similar or higher attack time
    assert!(
        foresighted.metrics.emergency_slots > myopic.metrics.emergency_slots,
        "foresighted {} vs myopic {} emergency slots",
        foresighted.metrics.emergency_slots,
        myopic.metrics.emergency_slots
    );
}

/// Fig. 11d: power capping during emergencies degrades tail latency by
/// roughly the paper's factor (≈2–4×).
#[test]
fn emergency_latency_degradation_in_paper_band() {
    let report = run_myopic(7.4);
    assert!(report.metrics.emergency_events > 0);
    let d = report.metrics.mean_emergency_degradation();
    assert!((1.8..=5.0).contains(&d), "degradation {d} outside band");
}

/// Fig. 11a: the 1 kW-overload crossing time is under four minutes, and
/// hotter supply air reaches the limit faster.
#[test]
fn overload_crossing_times_match_figure_11a() {
    let zone = ZoneModel::paper_default();
    let t32 = Temperature::from_celsius(32.0);
    let one_kw = zone.time_to_reach(t32, Power::from_kilowatts(1.0));
    assert!(one_kw.as_minutes() < 4.0);
    let from_29 = zone.time_to_reach_from(
        Temperature::from_celsius(29.0),
        t32,
        Power::from_kilowatts(1.0),
    );
    assert!(from_29 < one_kw);
}

/// Fig. 12a: a bigger battery lets the attacker do more damage.
#[test]
fn bigger_battery_more_emergencies() {
    use hbm_units::Energy;
    let run = |kwh: f64| {
        let config =
            ColoConfig::paper_default().with_battery_capacity(Energy::from_kilowatt_hours(kwh));
        let policy = MyopicPolicy::new(Power::from_kilowatts(7.4));
        let mut sim = Simulation::new(config, Box::new(policy), 1);
        sim.run(MEASURE_DAYS * 1440)
    };
    let small = run(0.1);
    let large = run(0.4);
    assert!(
        large.metrics.emergency_slots > small.metrics.emergency_slots,
        "battery 0.4 kWh ({}) must beat 0.1 kWh ({})",
        large.metrics.emergency_slots,
        small.metrics.emergency_slots
    );
}

/// Fig. 12b: degrading the side channel (jamming) reduces the attack's
/// effectiveness.
#[test]
fn side_channel_noise_blunts_the_attack() {
    let run = |noise_kw: f64| {
        let config =
            ColoConfig::paper_default().with_side_channel_noise(Power::from_kilowatts(noise_kw));
        let policy = MyopicPolicy::new(Power::from_kilowatts(7.4));
        let mut sim = Simulation::new(config, Box::new(policy), 1);
        sim.run(MEASURE_DAYS * 1440)
    };
    let clean = run(0.0);
    let jammed = run(0.8);
    assert!(
        jammed.metrics.emergency_slots < clean.metrics.emergency_slots,
        "jammed {} must underperform clean {}",
        jammed.metrics.emergency_slots,
        clean.metrics.emergency_slots
    );
}

/// Fig. 12d: higher average utilization means more attack opportunities.
#[test]
fn higher_utilization_more_emergencies() {
    let run = |u: f64| {
        let config = ColoConfig::paper_default().with_mean_utilization(u);
        let policy = MyopicPolicy::new(Power::from_kilowatts(7.4));
        let mut sim = Simulation::new(config, Box::new(policy), 1);
        sim.run(MEASURE_DAYS * 1440)
    };
    let low = run(0.62);
    let high = run(0.85);
    assert!(
        high.metrics.emergency_slots > low.metrics.emergency_slots,
        "85 % utilization ({}) must beat 62 % ({})",
        high.metrics.emergency_slots,
        low.metrics.emergency_slots
    );
}

/// Fig. 12e direction: extra cooling headroom suppresses the default-sized
/// attack.
#[test]
fn extra_cooling_capacity_suppresses_the_attack() {
    let run = |extra: f64| {
        let config = ColoConfig::paper_default().with_extra_cooling(extra);
        let policy = MyopicPolicy::new(Power::from_kilowatts(7.4));
        let mut sim = Simulation::new(config, Box::new(policy), 1);
        sim.run(MEASURE_DAYS * 1440)
    };
    let none = run(0.0);
    let ten_pct = run(0.10);
    assert!(
        ten_pct.metrics.emergency_slots < none.metrics.emergency_slots / 4,
        "10 % headroom ({}) must largely suppress the 1 kW attack ({})",
        ten_pct.metrics.emergency_slots,
        none.metrics.emergency_slots
    );
}

/// Fig. 13: the findings carry over to the alternate (google-like) trace.
#[test]
fn alternate_trace_preserves_the_ordering() {
    use hbm_workload::TraceShape;
    let mut config = ColoConfig::paper_default();
    config.trace.shape = TraceShape::Google;

    let mut myopic = Simulation::new(
        config.clone(),
        Box::new(MyopicPolicy::new(Power::from_kilowatts(7.4))),
        1,
    );
    let m = myopic.run(MEASURE_DAYS * 1440);

    let mut random = Simulation::new(
        config.clone(),
        Box::new(RandomPolicy::new(0.08, config.attack_load, config.slot, 1)),
        1,
    );
    let r = random.run(MEASURE_DAYS * 1440);

    assert!(m.metrics.emergency_slots > r.metrics.emergency_slots);
    if m.metrics.emergency_events > 0 {
        assert!(m.metrics.mean_emergency_degradation() > 1.5);
    }
}
