//! Cross-crate integration tests: the full simulator pipeline, spanning
//! workload generation, the voltage side channel, battery dynamics, the
//! thermal models, the emergency protocol, attack policies, metrics, and
//! the defenses.

use hbm_battery::BatterySpec;
use hbm_core::{
    AttackAction, ColoConfig, CostModel, ForesightedPolicy, MyopicPolicy, OneShotPolicy,
    RandomPolicy, Simulation,
};
use hbm_defense::{reading_for, ServerCalorimeter, SlaMonitor, ThermalResidualDetector};
use hbm_thermal::ZoneModel;
use hbm_units::{Duration, Energy, Power, Temperature, TemperatureDelta};

fn week_config() -> ColoConfig {
    ColoConfig::paper_default().with_trace_len(14 * 1440)
}

#[test]
fn benign_colocation_never_sees_an_emergency() {
    // With subscriptions sized to capacity and no battery games, the
    // operator's 27 °C conditioning holds all year round.
    let policy = MyopicPolicy::new(Power::from_kilowatts(99.0)); // never fires
    let mut sim = Simulation::new(week_config(), Box::new(policy), 5);
    let report = sim.run(14 * 1440);
    assert_eq!(report.metrics.emergency_events, 0);
    assert_eq!(report.metrics.outage_events, 0);
    assert!(report.metrics.avg_delta_t() < TemperatureDelta::from_celsius(0.05));
}

#[test]
fn full_pipeline_attack_to_emergency_to_recovery() {
    let policy = MyopicPolicy::new(Power::from_kilowatts(7.4));
    let mut sim = Simulation::new(week_config(), Box::new(policy), 1);
    let (report, records) = sim.run_recorded(14 * 1440);

    // The attack produced emergencies…
    assert!(report.metrics.emergency_events > 0);
    // …the colocation always recovered (no outage from a 1 kW attack)…
    assert_eq!(report.metrics.outage_events, 0);
    // …and the inlet returned to the setpoint after every episode.
    let last = records.last().unwrap();
    assert!(last.inlet < Temperature::from_celsius(33.0));

    // Every capping slot capped the benign tenants to 36 × 120 W.
    for r in records.iter().filter(|r| r.capping) {
        assert!(r.benign_actual <= Power::from_kilowatts(4.32) + Power::from_watts(1e-6));
    }

    // Meter conservation: metered power never exceeds the 8 kW capacity.
    for r in &records {
        assert!(r.metered_total <= Power::from_kilowatts(8.0) + Power::from_watts(1e-6));
    }
}

#[test]
fn energy_accounting_is_consistent() {
    let policy = MyopicPolicy::new(Power::from_kilowatts(7.4));
    let mut sim = Simulation::new(week_config(), Box::new(policy), 2);
    let (report, records) = sim.run_recorded(7 * 1440);
    let m = &report.metrics;

    // Behind-the-meter energy equals the battery-fed attack energy minus
    // the charging energy the meter *did* see; at minimum, attack energy is
    // fully accounted for in the attacker's actual energy.
    assert!(m.attack_energy > Energy::ZERO);
    assert!(m.attacker_actual_energy > Energy::ZERO);
    assert!(m.attacker_metered_energy > Energy::ZERO);

    // Per-slot: actual - metered == battery attack flow during attacks.
    for r in records.iter().filter(|r| r.action == AttackAction::Attack) {
        let gap = r.actual_total - r.metered_total;
        assert!(
            (gap - r.attack_load).abs() < Power::from_watts(1.0),
            "meter gap {gap} must equal the battery flow {}",
            r.attack_load
        );
    }
}

#[test]
fn one_shot_requires_the_big_battery() {
    // With only the repeated-attack battery (0.2 kWh @ 1 kW), a one-shot
    // attempt cannot push past 45 °C; with the 3 kW pack it can.
    let mut small = week_config();
    small.attack_load = Power::from_kilowatts(1.0);
    let mut sim = Simulation::new(
        small,
        Box::new(OneShotPolicy::new(Power::from_kilowatts(7.6))),
        1,
    );
    assert_eq!(sim.run(3 * 1440).metrics.outage_events, 0);

    let mut big = week_config();
    big.battery = BatterySpec::one_shot();
    big.attack_load = Power::from_kilowatts(3.0);
    let mut sim = Simulation::new(
        big,
        Box::new(OneShotPolicy::new(Power::from_kilowatts(7.6))),
        1,
    );
    assert!(sim.run(3 * 1440).metrics.outage_events >= 1);
}

#[test]
fn foresighted_learns_and_beats_random() {
    let config = week_config();
    let mut foresighted = Simulation::new(
        config.clone(),
        Box::new(ForesightedPolicy::paper_default(14.0, 1)),
        1,
    );
    foresighted.warmup(90 * 1440);
    let f = foresighted.run(14 * 1440);

    let mut random = Simulation::new(
        config.clone(),
        Box::new(RandomPolicy::new(0.08, config.attack_load, config.slot, 1)),
        1,
    );
    let r = random.run(14 * 1440);

    assert!(
        f.metrics.emergency_slots > r.metrics.emergency_slots,
        "learning must beat random timing: {} vs {}",
        f.metrics.emergency_slots,
        r.metrics.emergency_slots
    );
    assert!(f.metrics.emergency_events > 0);
}

#[test]
fn residual_detector_catches_the_simulated_attack() {
    let config = week_config();
    let policy = MyopicPolicy::new(Power::from_kilowatts(7.4));
    let mut sim = Simulation::new(config.clone(), Box::new(policy), 1);
    let (_, records) = sim.run_recorded(14 * 1440);

    let mut detector = ThermalResidualDetector::new(
        ZoneModel::new(
            config.cooling,
            config.zone_heat_capacity_j_per_k,
            config.zone_pulldown_w_per_k,
        ),
        TemperatureDelta::from_celsius(0.8),
        3,
    );
    let mut alarms_during_attacks = 0;
    for r in &records {
        let alarm = detector.observe(r.metered_total, r.inlet, config.slot);
        if alarm && r.attack_load > Power::ZERO {
            alarms_during_attacks += 1;
        }
    }
    assert!(
        alarms_during_attacks > 0,
        "the cross-check defense must fire during battery-fed attacks"
    );
}

#[test]
fn sla_monitor_distinguishes_attack_from_quiet_weeks() {
    let config = week_config();

    let run = |policy: Box<dyn hbm_core::AttackPolicy>| {
        let mut sim = Simulation::new(config.clone(), policy, 1);
        let (_, records) = sim.run_recorded(14 * 1440);
        let mut monitor = SlaMonitor::new(0.0005, 0.001, 12.0);
        let mut alarmed = false;
        for r in &records {
            alarmed |= monitor.observe(r.capping);
        }
        alarmed
    };

    assert!(!run(Box::new(MyopicPolicy::new(Power::from_kilowatts(
        99.0
    )))));
    assert!(run(Box::new(MyopicPolicy::new(Power::from_kilowatts(7.4)))));
}

#[test]
fn calorimetry_pinpoints_exactly_the_attack_servers() {
    let config = week_config();
    let policy = MyopicPolicy::new(Power::from_kilowatts(7.4));
    let mut sim = Simulation::new(config.clone(), Box::new(policy), 1);
    let (_, records) = sim.run_recorded(7 * 1440);
    let r = records
        .iter()
        .find(|r| r.attack_load > Power::from_watts(900.0))
        .expect("full-load attack slot exists");

    let calorimeter = ServerCalorimeter::new(Power::from_watts(40.0));
    let benign_share = r.benign_actual / config.benign_server_count() as f64;
    let mut readings: Vec<_> = (0..config.benign_server_count())
        .map(|_| reading_for(benign_share, benign_share, r.inlet, 0.018))
        .collect();
    for _ in 0..config.attacker_servers {
        let actual = (config.attacker_capacity + r.attack_load) / config.attacker_servers as f64;
        let metered = config.attacker_capacity / config.attacker_servers as f64;
        readings.push(reading_for(actual, metered, r.inlet, 0.018));
    }
    let flagged = calorimeter.flag_servers(&readings);
    let expected: Vec<usize> = (config.benign_server_count()
        ..config.benign_server_count() + config.attacker_servers)
        .collect();
    assert_eq!(flagged, expected);
}

#[test]
fn cost_report_is_internally_consistent() {
    let config = week_config();
    let policy = MyopicPolicy::new(Power::from_kilowatts(7.4));
    let mut sim = Simulation::new(config.clone(), Box::new(policy), 1);
    let report = sim.run(14 * 1440);
    let costs = CostModel::paper_default().yearly_report(
        &report.metrics,
        config.attacker_capacity,
        config.attacker_servers,
        report.metrics.attacker_metered_energy,
    );
    assert!(costs.attacker_subscription > 0.0);
    assert!(costs.attacker_servers > 0.0);
    assert!(costs.attacker_total() > costs.attacker_subscription);
    // With emergencies present, victims must be losing money.
    if report.metrics.emergency_events > 0 {
        assert!(costs.victim_performance > 0.0);
    }
}

#[test]
fn simulation_runs_a_full_year_quickly_enough() {
    // Year-long evaluation is the paper's methodology; keep it tractable.
    let config = ColoConfig::paper_default();
    let policy = MyopicPolicy::new(Power::from_kilowatts(7.4));
    let mut sim = Simulation::new(config, Box::new(policy), 1);
    let start = std::time::Instant::now();
    let report = sim.run(365 * 1440);
    assert_eq!(report.metrics.slots, 365 * 1440);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(60),
        "a simulated year should take seconds, not minutes"
    );
    assert!(report.metrics.emergency_events > 0);
}

#[test]
fn outage_downtime_is_respected() {
    let mut config = week_config();
    config.battery = BatterySpec::one_shot();
    config.attack_load = Power::from_kilowatts(3.0);
    config.outage_downtime = Duration::from_minutes(30.0);
    let mut sim = Simulation::new(
        config,
        Box::new(OneShotPolicy::new(Power::from_kilowatts(7.6))),
        1,
    );
    let (report, records) = sim.run_recorded(3 * 1440);
    assert!(report.metrics.outage_events >= 1);
    let first_outage = records.iter().position(|r| r.outage).unwrap();
    let outage_run = records[first_outage..]
        .iter()
        .take_while(|r| r.outage)
        .count();
    assert_eq!(outage_run, 30, "downtime must last exactly 30 slots");
}
