//! Offline stand-in for `serde_derive`: the derive macros parse nothing and
//! emit nothing. The workspace only *derives* the serde traits (for
//! downstream users of the real crates); it never serializes, so empty
//! expansions are sufficient and keep the build fully offline.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts (and ignores) `#[serde(...)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts (and ignores) `#[serde(...)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
