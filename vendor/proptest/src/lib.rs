//! Offline stand-in for `proptest` 1.x.
//!
//! Provides the subset the workspace's property tests use: the
//! [`proptest!`] macro, range/tuple/`Just`/`prop_oneof!`/collection
//! strategies, `prop_map`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test RNG (boundary values first, then random); there
//! is no shrinking — failures report the generated inputs instead.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Per-test case source: deterministic RNG plus the case index, so
/// strategies can emit boundary values on the first cases.
pub struct TestRunner {
    rng: StdRng,
    case: u32,
}

impl TestRunner {
    /// Creates a runner for one named test.
    pub fn new(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
            case: 0,
        }
    }

    /// Marks the start of the next case.
    pub fn next_case(&mut self) {
        self.case += 1;
    }

    /// The current case index (0-based).
    pub fn case(&self) -> u32 {
        self.case
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Error carried out of a failing property body.
pub type TestCaseError = String;

/// Run-count configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for one property argument.
///
/// Object-safe core; combinators live on [`StrategyExt`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value for the given runner state.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).generate(runner)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        (**self).generate(runner)
    }
}

/// Combinators over [`Strategy`] (blanket-implemented).
pub trait StrategyExt: Strategy + Sized {
    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

/// See [`StrategyExt::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// Constant strategy: always yields a clone of the value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, runner: &mut TestRunner) -> f64 {
        match runner.case() {
            // Boundary emphasis: the exact start, then just inside the end.
            0 => self.start,
            1 => {
                let span = self.end - self.start;
                self.start + span * (1.0 - 1e-9)
            }
            _ => runner.rng().random_range(self.start..self.end),
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, runner: &mut TestRunner) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        match runner.case() {
            0 => lo,
            1 => hi,
            _ => {
                let u: f64 = runner.rng().random();
                // 53-bit grid over the closed interval.
                lo + u * (hi - lo)
            }
        }
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                match runner.case() {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => runner.rng().random_range(self.start..self.end),
                }
            }
        }
    )*};
}
impl_int_range_strategy!(usize, u64, u32, u8, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        let i = if (runner.case() as usize) < self.options.len() {
            // Early cases visit each arm once.
            runner.case() as usize
        } else {
            runner.rng().random_range(0..self.options.len())
        };
        self.options[i].generate(runner)
    }
}

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRunner};
        use rand::RngExt;

        /// Strategy for `Vec`s of `element` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
                let len = match runner.case() {
                    // Boundary emphasis on the shortest and longest lengths.
                    0 => self.size.lo,
                    1 => self.size.hi - 1,
                    _ => runner.rng().random_range(self.size.lo..self.size.hi),
                };
                (0..len).map(|_| self.element.generate(runner)).collect()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, StrategyExt, TestCaseError, TestRunner, Union,
    };
}

/// Uniform choice among strategy arms of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// Asserts inside a property body; failure aborts only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!("{} ({}:{})", format!($($fmt)+), file!(), line!()));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?} ({}:{})",
                format!($($fmt)+),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

/// Declares property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0.0..1.0f64, n in 1usize..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest!(@impl ($config) $($(#[$meta])* fn $name($($arg in $strategy),+) $body)*);
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($(#[$meta])* fn $name($($arg in $strategy),+) $body)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::new(concat!(module_path!(), "::", stringify!($name)));
                for _ in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut runner);)+
                    let case_desc = [
                        $(format!("  {} = {:?}", stringify!($arg), &$arg)),+
                    ].join("\n");
                    let result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = result {
                        panic!(
                            "property '{}' failed at case {}:\n{}\ninputs:\n{}",
                            stringify!($name),
                            runner.case(),
                            e,
                            case_desc
                        );
                    }
                    runner.next_case();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn unit() -> impl Strategy<Value = f64> {
        0.0..1.0f64
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in unit(), n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0.0..1.0f64, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn tuples_and_map(s in (0.0..1.0f64, 1u32..4).prop_map(|(a, b)| a * b as f64)) {
            prop_assert!((0.0..4.0).contains(&s));
        }

        #[test]
        fn oneof_picks_arms(k in prop_oneof![Just(1usize), Just(2usize)]) {
            prop_assert!(k == 1usize || k == 2usize);
        }
    }

    #[test]
    fn boundary_cases_come_first() {
        let mut runner = TestRunner::new("boundary");
        let s = 5.0..10.0f64;
        assert_eq!(Strategy::generate(&s, &mut runner), 5.0);
        runner.next_case();
        assert!(Strategy::generate(&s, &mut runner) > 9.99);
    }
}
