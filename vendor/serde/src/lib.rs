//! Offline stand-in for `serde`: marker traits plus re-exported no-op
//! derive macros. Like real serde, the derive macro and the trait share a
//! path (`serde::Serialize` names both), so `use serde::{Deserialize,
//! Serialize}` works unchanged.
//!
//! The blanket impls make any `T: Serialize`-style bound satisfiable; the
//! workspace itself never serializes, it only derives for downstream users.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Owned-deserialization marker.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
