//! Offline stand-in for `rand` 0.10.
//!
//! Implements exactly the surface this workspace uses: a deterministic,
//! seedable [`rngs::StdRng`] plus the [`SeedableRng`] and [`RngExt`]
//! traits with `random::<f64>()`, `random::<bool>()`, and
//! `random_range(Range<_>)`.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 — the same construction the rand crate's small-RNG family
//! uses. It is *not* cryptographically secure, which matches how the
//! simulator uses randomness (seeded, reproducible Monte Carlo draws).

use core::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's full output range.
pub trait StandardRandom: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardRandom for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardRandom for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Use a high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl StandardRandom for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Types samplable uniformly from a half-open range.
pub trait UniformRandom: Sized {
    /// Draws one value in `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRandom for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                // Wrapping subtraction handles signed ranges spanning zero.
                let span = range.end.wrapping_sub(range.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is at most
                // span/2^64, negligible for the simulator's small ranges.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_uniform_int!(usize, u64, u32, u8, i32, i64);

impl UniformRandom for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let u = f64::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a value of `T` from its standard distribution
    /// (`f64` → uniform `[0,1)`, `bool` → fair coin).
    fn random<T: StandardRandom>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `[range.start, range.end)`.
    fn random_range<T: UniformRandom>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Draws `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's standard RNG).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The raw xoshiro256++ state words. Together with
        /// [`StdRng::from_state`] this lets batch engines keep many
        /// generators in structure-of-arrays form and step them in lockstep
        /// while staying on the exact same stream as the scalar generator.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from raw state words (see [`StdRng::state`]).
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut z = seed;
            let mut next = || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        // `#[inline]` so the generator fuses into callers' sampling loops
        // across crate boundaries without relying on LTO (the workspace
        // builds without it; see the profile note in the root Cargo.toml).
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_reconstruction() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<f64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_uniform_in_unit_interval_with_plausible_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_sampling_respects_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = rng.random_range(0..7usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bins should be hit: {seen:?}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_700..5_300).contains(&heads), "heads {heads}");
    }
}
