//! Offline stand-in for `criterion` 0.5.
//!
//! A real (if simple) wall-clock benchmark harness: each benchmark is
//! warmed up, then timed over `sample_size` samples, and the median /
//! mean / min per-iteration times are printed. Statistical analysis,
//! HTML reports, and CLI filtering are out of scope.
//!
//! Set `BENCH_JSON=/path/out.json` to also write every result as a JSON
//! array of `{name, median_ns, mean_ns, min_ns, samples}` objects —
//! `scripts/bench_summary.sh` uses this to build `BENCH_thermal.json`.
//!
//! Set `BENCH_SMOKE=1` for a fast correctness pass: calibration stops at
//! ~100 µs per sample and each benchmark takes at most 5 samples. CI runs
//! pull requests in this mode so every benchmark body (and the JSON
//! export) is exercised without the full timing budget; the numbers it
//! produces are not comparison-grade.

use std::time::{Duration, Instant};

/// One finished benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id, e.g. `group/function`.
    pub name: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample's per-iteration time in nanoseconds.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 30,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IdLike, mut f: F) {
        let name = id.into_id();
        let m = run_benchmark(&name, self.default_sample_size, &mut f);
        self.results.push(m);
    }

    fn finalize(&self) {
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if !path.is_empty() {
                if let Err(e) = std::fs::write(&path, to_json(&self.results)) {
                    eprintln!("warning: could not write BENCH_JSON {path}: {e}");
                }
            }
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IdLike, mut f: F) {
        let name = format!("{}/{}", self.name, id.into_id());
        let n = self.sample_size.unwrap_or(self.parent.default_sample_size);
        let m = run_benchmark(&name, n, &mut f);
        self.parent.results.push(m);
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IdLike,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility; a no-op).
    pub fn finish(self) {}
}

/// Benchmark identifier with a parameter, e.g. `BenchmarkId::new("sim", 7)`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter into one id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Anything usable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IdLike {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IdLike for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IdLike for String {
    fn into_id(self) -> String {
        self
    }
}

impl IdLike for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// Only a hint in this stand-in.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state; setup runs once per iteration.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// Passed to each benchmark closure; owns the timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with fresh input from `setup` each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Whether a `BENCH_SMOKE` env value requests smoke mode (set and neither
/// empty nor `"0"`).
fn is_smoke_value(value: Option<&str>) -> bool {
    value.is_some_and(|v| !v.is_empty() && v != "0")
}

fn smoke_mode() -> bool {
    is_smoke_value(std::env::var("BENCH_SMOKE").ok().as_deref())
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) -> Measurement {
    // Calibrate: find an iteration count whose sample takes ~2 ms, so the
    // per-sample timer error stays small without long runs. Smoke mode
    // shrinks both knobs — it only needs to prove the benchmarks run.
    let (samples, sample_budget) = if smoke_mode() {
        (samples.min(5), Duration::from_micros(100))
    } else {
        (samples, Duration::from_millis(2))
    };
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= sample_budget || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let median_ns = per_iter_ns[per_iter_ns.len() / 2];
    let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let min_ns = per_iter_ns[0];
    println!(
        "bench {name:<50} median {:>12}  mean {:>12}  min {:>12}  ({} samples x {} iters)",
        fmt_ns(median_ns),
        fmt_ns(mean_ns),
        fmt_ns(min_ns),
        samples,
        iters
    );
    Measurement {
        name: name.to_string(),
        median_ns,
        mean_ns,
        min_ns,
        samples,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn to_json(results: &[Measurement]) -> String {
    let mut out = String::from("[\n");
    for (i, m) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}}}",
            m.name.replace('\\', "\\\\").replace('"', "\\\""),
            m.median_ns,
            m.mean_ns,
            m.min_ns,
            m.samples
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Declares a benchmark group: `criterion_group!(benches, f1, f2);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Benchmark binaries receive harness CLI flags (e.g. --bench);
            // this stand-in runs everything and ignores them.
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            $crate::finalize(&c);
        }
    };
}

/// Called by [`criterion_main!`] after all groups ran; writes `BENCH_JSON`.
pub fn finalize(c: &Criterion) {
    c.finalize();
}

/// Re-export so existing `use criterion::black_box` imports keep working.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        g.bench_function("spin", |b| {
            b.iter(|| (0..100u64).map(|x| x.wrapping_mul(3)).sum::<u64>())
        });
        g.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].median_ns > 0.0);
    }

    #[test]
    fn smoke_values_parse_as_documented() {
        assert!(!is_smoke_value(None));
        assert!(!is_smoke_value(Some("")));
        assert!(!is_smoke_value(Some("0")));
        assert!(is_smoke_value(Some("1")));
        assert!(is_smoke_value(Some("true")));
    }

    #[test]
    fn json_escapes_and_formats() {
        let m = Measurement {
            name: "a\"b".into(),
            median_ns: 1.5,
            mean_ns: 2.5,
            min_ns: 1.0,
            samples: 3,
        };
        let j = to_json(&[m]);
        assert!(j.contains("a\\\"b"));
        assert!(j.starts_with("[\n"));
        assert!(j.trim_end().ends_with(']'));
    }
}
